//! Deterministic discrete-event queue.
//!
//! The execution driver in `tdm-runtime` advances simulated time by popping
//! the earliest pending event from an [`EventQueue`]. Events scheduled for the
//! same cycle are delivered in insertion order (FIFO), which keeps the
//! simulation fully deterministic: two runs with identical inputs produce
//! identical timelines. Tie-breaking never involves randomness — see the
//! seeding contract in [`crate::rng`] for how this queue and the seeded
//! [`SplitMix64`](crate::rng::SplitMix64) together guarantee reproducible
//! cycle counts.

use std::cmp::Ordering;
use std::collections::BinaryHeap;

use crate::clock::Cycle;

/// An event paired with its delivery time and a monotonically increasing
/// sequence number used to break ties deterministically.
#[derive(Debug, Clone)]
struct Scheduled<E> {
    time: Cycle,
    seq: u64,
    payload: E,
}

impl<E> PartialEq for Scheduled<E> {
    fn eq(&self, other: &Self) -> bool {
        self.time == other.time && self.seq == other.seq
    }
}

impl<E> Eq for Scheduled<E> {}

impl<E> PartialOrd for Scheduled<E> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl<E> Ord for Scheduled<E> {
    fn cmp(&self, other: &Self) -> Ordering {
        // BinaryHeap is a max-heap; invert the ordering so the earliest time
        // (and, within a time, the lowest sequence number) is popped first.
        other
            .time
            .cmp(&self.time)
            .then_with(|| other.seq.cmp(&self.seq))
    }
}

/// A time-ordered queue of simulation events.
///
/// # Example
///
/// ```
/// use tdm_sim::clock::Cycle;
/// use tdm_sim::event::EventQueue;
///
/// let mut q = EventQueue::new();
/// q.schedule(Cycle::new(20), "late");
/// q.schedule(Cycle::new(5), "early");
/// q.schedule(Cycle::new(5), "early-second");
///
/// assert_eq!(q.pop(), Some((Cycle::new(5), "early")));
/// assert_eq!(q.pop(), Some((Cycle::new(5), "early-second")));
/// assert_eq!(q.pop(), Some((Cycle::new(20), "late")));
/// assert_eq!(q.pop(), None);
/// ```
#[derive(Debug, Clone)]
pub struct EventQueue<E> {
    heap: BinaryHeap<Scheduled<E>>,
    next_seq: u64,
    now: Cycle,
}

impl<E> Default for EventQueue<E> {
    fn default() -> Self {
        Self::new()
    }
}

impl<E> EventQueue<E> {
    /// Creates an empty event queue with the simulation clock at zero.
    pub fn new() -> Self {
        EventQueue {
            heap: BinaryHeap::new(),
            next_seq: 0,
            now: Cycle::ZERO,
        }
    }

    /// The current simulation time: the delivery time of the most recently
    /// popped event (zero before any event has been popped).
    pub fn now(&self) -> Cycle {
        self.now
    }

    /// Number of pending events.
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// True if no events are pending.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }

    /// Schedules `payload` for delivery at absolute time `time`.
    ///
    /// Scheduling an event in the past (before [`EventQueue::now`]) is
    /// allowed but indicates a modelling error in the caller; the event will
    /// be delivered immediately on the next pop and time will not move
    /// backwards.
    pub fn schedule(&mut self, time: Cycle, payload: E) {
        let seq = self.next_seq;
        self.next_seq += 1;
        self.heap.push(Scheduled { time, seq, payload });
    }

    /// Schedules `payload` for delivery `delay` cycles after the current
    /// simulation time.
    pub fn schedule_after(&mut self, delay: Cycle, payload: E) {
        let time = self.now + delay;
        self.schedule(time, payload);
    }

    /// Removes and returns the earliest pending event together with its
    /// delivery time, advancing the simulation clock to that time.
    ///
    /// Returns `None` when the queue is empty.
    pub fn pop(&mut self) -> Option<(Cycle, E)> {
        let Scheduled { time, payload, .. } = self.heap.pop()?;
        // Never move the clock backwards if a caller scheduled into the past.
        self.now = self.now.max(time);
        Some((self.now, payload))
    }

    /// Returns the delivery time of the earliest pending event without
    /// removing it.
    pub fn peek_time(&self) -> Option<Cycle> {
        self.heap.peek().map(|s| s.time)
    }

    /// Drops every pending event and resets the clock to zero.
    pub fn clear(&mut self) {
        self.heap.clear();
        self.now = Cycle::ZERO;
        self.next_seq = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pops_in_time_order() {
        let mut q = EventQueue::new();
        q.schedule(Cycle::new(30), 3);
        q.schedule(Cycle::new(10), 1);
        q.schedule(Cycle::new(20), 2);
        let order: Vec<i32> = std::iter::from_fn(|| q.pop().map(|(_, e)| e)).collect();
        assert_eq!(order, vec![1, 2, 3]);
    }

    #[test]
    fn ties_break_in_insertion_order() {
        let mut q = EventQueue::new();
        for i in 0..10 {
            q.schedule(Cycle::new(5), i);
        }
        let order: Vec<i32> = std::iter::from_fn(|| q.pop().map(|(_, e)| e)).collect();
        assert_eq!(order, (0..10).collect::<Vec<_>>());
    }

    #[test]
    fn now_advances_with_pops() {
        let mut q = EventQueue::new();
        assert_eq!(q.now(), Cycle::ZERO);
        q.schedule(Cycle::new(100), ());
        q.schedule(Cycle::new(200), ());
        q.pop();
        assert_eq!(q.now(), Cycle::new(100));
        q.pop();
        assert_eq!(q.now(), Cycle::new(200));
    }

    #[test]
    fn schedule_after_is_relative_to_now() {
        let mut q = EventQueue::new();
        q.schedule(Cycle::new(50), "a");
        q.pop();
        q.schedule_after(Cycle::new(10), "b");
        assert_eq!(q.pop(), Some((Cycle::new(60), "b")));
    }

    #[test]
    fn clock_never_moves_backwards() {
        let mut q = EventQueue::new();
        q.schedule(Cycle::new(100), "future");
        q.pop();
        q.schedule(Cycle::new(10), "past");
        let (t, _) = q.pop().unwrap();
        assert_eq!(t, Cycle::new(100));
        assert_eq!(q.now(), Cycle::new(100));
    }

    #[test]
    fn peek_does_not_remove() {
        let mut q = EventQueue::new();
        q.schedule(Cycle::new(7), 'x');
        assert_eq!(q.peek_time(), Some(Cycle::new(7)));
        assert_eq!(q.len(), 1);
    }

    #[test]
    fn clear_resets_everything() {
        let mut q = EventQueue::new();
        q.schedule(Cycle::new(7), 'x');
        q.pop();
        q.schedule(Cycle::new(9), 'y');
        q.clear();
        assert!(q.is_empty());
        assert_eq!(q.now(), Cycle::ZERO);
        assert_eq!(q.pop(), None);
    }

    #[test]
    fn empty_queue_reports_empty() {
        let q: EventQueue<()> = EventQueue::new();
        assert!(q.is_empty());
        assert_eq!(q.len(), 0);
        assert_eq!(q.peek_time(), None);
    }

    /// The seeding contract of [`crate::rng`], exercised end to end at the
    /// substrate level: a seeded random mix of schedules and pops (including
    /// heavy same-cycle ties) replays to an identical timeline.
    #[test]
    fn seeded_replay_produces_identical_timeline() {
        use crate::rng::SplitMix64;

        fn run(seed: u64) -> Vec<(Cycle, u64)> {
            let mut rng = SplitMix64::new(seed);
            let mut q = EventQueue::new();
            let mut timeline = Vec::new();
            let mut next_id = 0u64;
            for _ in 0..500 {
                if rng.next_below(3) > 0 || q.is_empty() {
                    // Coarse times force frequent ties on the same cycle.
                    let delay = Cycle::new(rng.next_below(4) * 10);
                    q.schedule_after(delay, next_id);
                    next_id += 1;
                } else {
                    timeline.push(q.pop().unwrap());
                }
            }
            while let Some(ev) = q.pop() {
                timeline.push(ev);
            }
            timeline
        }

        for seed in [0u64, 1, 42, 0xDEAD_BEEF] {
            assert_eq!(run(seed), run(seed), "seed {seed}");
        }
        // Distinct seeds produce distinct interleavings (sanity check that
        // the workload above is actually seed-sensitive).
        assert_ne!(run(1), run(2));
    }
}
