//! Deterministic discrete-event queue.
//!
//! The execution driver in `tdm-runtime` advances simulated time by popping
//! the earliest pending event from an [`EventQueue`]. Events scheduled for the
//! same cycle are delivered in insertion order (FIFO), which keeps the
//! simulation fully deterministic: two runs with identical inputs produce
//! identical timelines. Tie-breaking never involves randomness — see the
//! seeding contract in [`crate::rng`] for how this queue and the seeded
//! [`SplitMix64`](crate::rng::SplitMix64) together guarantee reproducible
//! cycle counts.
//!
//! Two implementations share that contract:
//!
//! * [`wheel::TimingWheel`] — a hierarchical timing wheel with O(1)
//!   amortized `schedule`/`pop` and a batched same-cycle drain
//!   ([`pop_batch`](wheel::TimingWheel::pop_batch)). Same-cycle FIFO order
//!   is structural (per-bucket intrusive lists), not a per-event sequence
//!   comparison. [`EventQueue`] is an alias for it; this is what the
//!   execution driver runs on.
//! * [`NaiveEventQueue`] — the retired `BinaryHeap` queue, ordered by
//!   `(time, insertion seq)`, kept as the obviously-correct reference. The
//!   lockstep-randomized suite at the bottom of this module drives both
//!   through the same seeded schedule/pop interleavings (heavy same-cycle
//!   ties, cascade-boundary and `Cycle::MAX`-adjacent times included) and
//!   demands identical timelines.
//!
//! Both queues clamp an event scheduled in the past to the current time
//! (the clock never moves backwards); the execution driver never does this,
//! and the queues agree bit-for-bit on it.

use std::cmp::Ordering;
use std::collections::BinaryHeap;

pub mod wheel;

pub use wheel::TimingWheel;

/// The event queue used by the execution driver: the hierarchical
/// [`TimingWheel`].
pub type EventQueue<E> = TimingWheel<E>;

/// An event paired with its delivery time and a monotonically increasing
/// sequence number used to break ties deterministically.
#[derive(Debug, Clone)]
struct Scheduled<E> {
    time: Cycle,
    seq: u64,
    payload: E,
}

impl<E> PartialEq for Scheduled<E> {
    fn eq(&self, other: &Self) -> bool {
        self.time == other.time && self.seq == other.seq
    }
}

impl<E> Eq for Scheduled<E> {}

impl<E> PartialOrd for Scheduled<E> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl<E> Ord for Scheduled<E> {
    fn cmp(&self, other: &Self) -> Ordering {
        // BinaryHeap is a max-heap; invert the ordering so the earliest time
        // (and, within a time, the lowest sequence number) is popped first.
        other
            .time
            .cmp(&self.time)
            .then_with(|| other.seq.cmp(&self.seq))
    }
}

use crate::clock::Cycle;

/// The retired binary-heap event queue, kept as the reference
/// implementation for the [`TimingWheel`] equivalence suite (the
/// `NaiveListArray` pattern: an obviously-correct structure the optimized
/// one is checked against in lockstep).
///
/// O(log n) per `schedule`/`pop` with a per-event sequence number for
/// same-cycle FIFO ties — the costs the wheel exists to remove.
///
/// # Example
///
/// ```
/// use tdm_sim::clock::Cycle;
/// use tdm_sim::event::NaiveEventQueue;
///
/// let mut q = NaiveEventQueue::new();
/// q.schedule(Cycle::new(20), "late");
/// q.schedule(Cycle::new(5), "early");
/// q.schedule(Cycle::new(5), "early-second");
///
/// assert_eq!(q.pop(), Some((Cycle::new(5), "early")));
/// assert_eq!(q.pop(), Some((Cycle::new(5), "early-second")));
/// assert_eq!(q.pop(), Some((Cycle::new(20), "late")));
/// assert_eq!(q.pop(), None);
/// ```
#[derive(Debug, Clone)]
pub struct NaiveEventQueue<E> {
    heap: BinaryHeap<Scheduled<E>>,
    next_seq: u64,
    now: Cycle,
}

impl<E> Default for NaiveEventQueue<E> {
    fn default() -> Self {
        Self::new()
    }
}

impl<E> NaiveEventQueue<E> {
    /// Creates an empty event queue with the simulation clock at zero.
    pub fn new() -> Self {
        NaiveEventQueue {
            heap: BinaryHeap::new(),
            next_seq: 0,
            now: Cycle::ZERO,
        }
    }

    /// The current simulation time: the delivery time of the most recently
    /// popped event (zero before any event has been popped).
    pub fn now(&self) -> Cycle {
        self.now
    }

    /// Number of pending events.
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// True if no events are pending.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }

    /// Schedules `payload` for delivery at absolute time `time`.
    ///
    /// Scheduling an event in the past (before [`NaiveEventQueue::now`]) is
    /// allowed but indicates a modelling error in the caller; the event is
    /// delivered at the current time, behind events already pending for it
    /// — the same clamp the wheel applies, so the two implementations stay
    /// comparable event for event.
    pub fn schedule(&mut self, time: Cycle, payload: E) {
        let time = time.max(self.now);
        let seq = self.next_seq;
        self.next_seq += 1;
        self.heap.push(Scheduled { time, seq, payload });
    }

    /// Schedules `payload` for delivery `delay` cycles after the current
    /// simulation time.
    pub fn schedule_after(&mut self, delay: Cycle, payload: E) {
        let time = self.now + delay;
        self.schedule(time, payload);
    }

    /// Removes and returns the earliest pending event together with its
    /// delivery time, advancing the simulation clock to that time.
    ///
    /// Returns `None` when the queue is empty.
    pub fn pop(&mut self) -> Option<(Cycle, E)> {
        let Scheduled { time, payload, .. } = self.heap.pop()?;
        // Scheduling clamps to `now`, so time is always monotone; the max is
        // kept as a belt-and-braces guard.
        self.now = self.now.max(time);
        Some((self.now, payload))
    }

    /// Returns the delivery time of the earliest pending event without
    /// removing it.
    pub fn peek_time(&self) -> Option<Cycle> {
        self.heap.peek().map(|s| s.time)
    }

    /// Drops every pending event and resets the clock to zero.
    pub fn clear(&mut self) {
        self.heap.clear();
        self.now = Cycle::ZERO;
        self.next_seq = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pops_in_time_order() {
        let mut q = EventQueue::new();
        q.schedule(Cycle::new(30), 3);
        q.schedule(Cycle::new(10), 1);
        q.schedule(Cycle::new(20), 2);
        let order: Vec<i32> = std::iter::from_fn(|| q.pop().map(|(_, e)| e)).collect();
        assert_eq!(order, vec![1, 2, 3]);
    }

    #[test]
    fn ties_break_in_insertion_order() {
        let mut q = EventQueue::new();
        for i in 0..10 {
            q.schedule(Cycle::new(5), i);
        }
        let order: Vec<i32> = std::iter::from_fn(|| q.pop().map(|(_, e)| e)).collect();
        assert_eq!(order, (0..10).collect::<Vec<_>>());
    }

    #[test]
    fn now_advances_with_pops() {
        let mut q = EventQueue::new();
        assert_eq!(q.now(), Cycle::ZERO);
        q.schedule(Cycle::new(100), ());
        q.schedule(Cycle::new(200), ());
        q.pop();
        assert_eq!(q.now(), Cycle::new(100));
        q.pop();
        assert_eq!(q.now(), Cycle::new(200));
    }

    #[test]
    fn schedule_after_is_relative_to_now() {
        let mut q = EventQueue::new();
        q.schedule(Cycle::new(50), "a");
        q.pop();
        q.schedule_after(Cycle::new(10), "b");
        assert_eq!(q.pop(), Some((Cycle::new(60), "b")));
    }

    #[test]
    fn clock_never_moves_backwards() {
        let mut q = EventQueue::new();
        q.schedule(Cycle::new(100), "future");
        q.pop();
        q.schedule(Cycle::new(10), "past");
        let (t, _) = q.pop().unwrap();
        assert_eq!(t, Cycle::new(100));
        assert_eq!(q.now(), Cycle::new(100));
    }

    #[test]
    fn peek_does_not_remove() {
        let mut q = EventQueue::new();
        q.schedule(Cycle::new(7), 'x');
        assert_eq!(q.peek_time(), Some(Cycle::new(7)));
        assert_eq!(q.len(), 1);
    }

    #[test]
    fn clear_resets_everything() {
        let mut q = EventQueue::new();
        q.schedule(Cycle::new(7), 'x');
        q.pop();
        q.schedule(Cycle::new(9), 'y');
        q.clear();
        assert!(q.is_empty());
        assert_eq!(q.now(), Cycle::ZERO);
        assert_eq!(q.pop(), None);
    }

    #[test]
    fn empty_queue_reports_empty() {
        let q: EventQueue<()> = EventQueue::new();
        assert!(q.is_empty());
        assert_eq!(q.len(), 0);
        assert_eq!(q.peek_time(), None);
    }

    /// The seeding contract of [`crate::rng`], exercised end to end at the
    /// substrate level: a seeded random mix of schedules and pops (including
    /// heavy same-cycle ties) replays to an identical timeline.
    #[test]
    fn seeded_replay_produces_identical_timeline() {
        use crate::rng::SplitMix64;

        fn run(seed: u64) -> Vec<(Cycle, u64)> {
            let mut rng = SplitMix64::new(seed);
            let mut q = EventQueue::new();
            let mut timeline = Vec::new();
            let mut next_id = 0u64;
            for _ in 0..500 {
                if rng.next_below(3) > 0 || q.is_empty() {
                    // Coarse times force frequent ties on the same cycle.
                    let delay = Cycle::new(rng.next_below(4) * 10);
                    q.schedule_after(delay, next_id);
                    next_id += 1;
                } else {
                    timeline.push(q.pop().unwrap());
                }
            }
            while let Some(ev) = q.pop() {
                timeline.push(ev);
            }
            timeline
        }

        for seed in [0u64, 1, 42, 0xDEAD_BEEF] {
            assert_eq!(run(seed), run(seed), "seed {seed}");
        }
        // Distinct seeds produce distinct interleavings (sanity check that
        // the workload above is actually seed-sensitive).
        assert_ne!(run(1), run(2));
    }

    // -----------------------------------------------------------------
    // Lockstep-randomized equivalence: TimingWheel vs NaiveEventQueue.
    // Both queues receive the identical seeded operation sequence and must
    // agree on every observable after every operation.
    // -----------------------------------------------------------------

    /// Drives both queues through `ops` seeded operations where delays are
    /// drawn by `delay` and pops happen with probability ~`pop_weight`/4.
    fn lockstep(
        seed: u64,
        ops: usize,
        pop_weight: u64,
        mut delay: impl FnMut(&mut crate::rng::SplitMix64) -> u64,
    ) {
        use crate::rng::SplitMix64;

        let mut rng = SplitMix64::new(seed);
        let mut wheel: TimingWheel<u64> = TimingWheel::new();
        let mut naive: NaiveEventQueue<u64> = NaiveEventQueue::new();
        let mut next_id = 0u64;
        for step in 0..ops {
            if rng.next_below(4) >= pop_weight || wheel.is_empty() {
                let d = Cycle::new(delay(&mut rng));
                wheel.schedule_after(d, next_id);
                naive.schedule_after(d, next_id);
                next_id += 1;
            } else {
                assert_eq!(wheel.pop(), naive.pop(), "seed {seed} step {step}");
            }
            assert_eq!(wheel.len(), naive.len(), "seed {seed} step {step}");
            assert_eq!(wheel.now(), naive.now(), "seed {seed} step {step}");
            assert_eq!(
                wheel.peek_time(),
                naive.peek_time(),
                "seed {seed} step {step}"
            );
        }
        loop {
            let (a, b) = (wheel.pop(), naive.pop());
            assert_eq!(a, b, "seed {seed} drain");
            if a.is_none() {
                break;
            }
        }
    }

    #[test]
    fn lockstep_near_future_with_heavy_ties() {
        for seed in 0..8u64 {
            // Coarse small delays: many same-cycle ties, all level-0/1.
            lockstep(seed, 2000, 2, |rng| rng.next_below(4) * 10);
        }
    }

    #[test]
    fn lockstep_mixed_horizons() {
        for seed in 0..8u64 {
            // Delays spanning every wheel level up to 2^36.
            lockstep(seed ^ 0xA5A5, 2000, 2, |rng| {
                let magnitude = rng.next_below(37);
                rng.next_below(1 << magnitude)
            });
        }
    }

    #[test]
    fn lockstep_cascade_boundaries() {
        // Delays clustered right at the wheel's power-of-two slot spans
        // (64^k ± 1), the off-by-one hot spots of cascade logic.
        for seed in 0..8u64 {
            lockstep(seed ^ 0x5C5C, 2000, 2, |rng| {
                let level = 1 + rng.next_below(4) as u32; // spans 64..=2^24
                let span = 1u64 << (6 * level);
                span - 1 + rng.next_below(3)
            });
        }
    }

    #[test]
    fn lockstep_pop_heavy_drains() {
        for seed in 0..4u64 {
            // Pop with probability 3/4: the queues run nearly dry often,
            // exercising empty/refill transitions.
            lockstep(seed ^ 0xD00D, 2000, 3, |rng| rng.next_below(100));
        }
    }

    #[test]
    fn lockstep_cycle_max_adjacent() {
        // Absolute times at the top of the u64 range (the driver's
        // "infinitely far" sentinel region), scheduled directly.
        let mut wheel: TimingWheel<u32> = TimingWheel::new();
        let mut naive: NaiveEventQueue<u32> = NaiveEventQueue::new();
        let times = [
            u64::MAX,
            u64::MAX - 1,
            u64::MAX - 63,
            u64::MAX - 64,
            u64::MAX - 65,
            1u64 << 60,
            (1u64 << 60) - 1,
            0,
            1,
        ];
        for (i, &t) in times.iter().enumerate() {
            wheel.schedule(Cycle::new(t), i as u32);
            naive.schedule(Cycle::new(t), i as u32);
        }
        loop {
            let (a, b) = (wheel.pop(), naive.pop());
            assert_eq!(a, b);
            if a.is_none() {
                break;
            }
        }
        assert_eq!(wheel.now(), Cycle::MAX);
    }
}
