//! Hierarchical timing wheel: the O(1) event core behind [`EventQueue`].
//!
//! A discrete-event simulator with a short, bounded event horizon — task
//! durations and DMU/NoC latencies are small cycle deltas relative to the
//! full `u64` time range — is the textbook case for a calendar-queue /
//! timing-wheel structure instead of a binary heap: `schedule` and `pop`
//! become O(1) amortized instead of O(log n), and the same-cycle FIFO
//! contract falls out of the structure itself (per-bucket intrusive lists)
//! rather than a per-event sequence-number comparison.
//!
//! # Structure
//!
//! The wheel has [`LEVELS`] levels of [`SLOTS`] buckets each. Level `k`
//! buckets span `SLOTS^k` cycles, so level 0 buckets hold events of a single
//! cycle and the top level covers the whole `u64` range:
//!
//! ```text
//! level 0   [·|·|·|●|·|…|·]   1-cycle buckets   — the near wheel
//! level 1   [·|·|●|·|·|…|·]   64-cycle buckets  ─┐ far levels: events
//! level 2   [·|●|·|·|·|…|·]   4096-cycle buckets ┤ cascade down one
//!   ⋮              ⋮                             │ level at a time as
//! level 10  [·|●|·|·|…]       2^60-cycle buckets ┘ time reaches them
//! ```
//!
//! An event at absolute time `T` is filed at the *lowest* level whose
//! current window contains `T` (the lowest level at which `T` and `now`
//! share all higher index bits), in the bucket selected by `T`'s index bits
//! for that level. Each bucket is an intrusive FIFO list over a node slab;
//! each level keeps one occupancy bit per bucket, so finding the next
//! non-empty bucket is a masked `trailing_zeros`, not a scan.
//!
//! `pop` looks at the level-0 bucket window first; when it is exhausted, the
//! first occupied bucket of the lowest non-empty far level is *cascaded*:
//! its whole list is detached and re-filed one level down (stable, so
//! same-cycle insertion order survives every cascade). Each event cascades
//! at most `LEVELS - 1` times in its life, which is the usual amortized-O(1)
//! argument for hierarchical wheels.
//!
//! # Same-cycle FIFO, structurally
//!
//! Events of one cycle all land in one level-0 bucket and are appended at
//! the tail; cascades preserve list order; `pop` takes the head. No
//! per-event sequence number is stored or compared — the queue discipline
//! *is* the order. The lockstep-randomized equivalence suite in
//! [`crate::event`] drives this wheel against the retired binary heap
//! ([`NaiveEventQueue`](crate::event::NaiveEventQueue)) to pin the
//! behavioural match.
//!
//! # Example
//!
//! ```
//! use tdm_sim::clock::Cycle;
//! use tdm_sim::event::wheel::TimingWheel;
//!
//! let mut q = TimingWheel::new();
//! q.schedule(Cycle::new(20), "late");
//! q.schedule(Cycle::new(5), "early");
//! q.schedule(Cycle::new(5), "early-second");
//!
//! assert_eq!(q.pop(), Some((Cycle::new(5), "early")));
//! assert_eq!(q.pop(), Some((Cycle::new(5), "early-second")));
//! assert_eq!(q.pop(), Some((Cycle::new(20), "late")));
//! assert_eq!(q.pop(), None);
//! ```
//!
//! [`EventQueue`]: crate::event::EventQueue

use crate::clock::Cycle;

/// Index bits per wheel level.
const BITS: u32 = 6;
/// Buckets per level (`2^BITS`), sized so one `u64` occupancy word covers a
/// level.
pub const SLOTS: usize = 1 << BITS;
/// Bucket-index mask within a level.
const MASK: u64 = (SLOTS as u64) - 1;
/// Wheel levels: `ceil(64 / BITS)` levels cover the entire `u64` cycle
/// range, so any [`Cycle`] (including `Cycle::MAX`) is representable.
pub const LEVELS: usize = 64usize.div_ceil(BITS as usize);
/// Null link / empty-bucket marker in the node slab.
const NIL: u32 = u32::MAX;

/// One slab node: an event payload linked into a bucket's FIFO list. Free
/// nodes keep their slot (payload `None`) and chain through `next`.
#[derive(Debug, Clone)]
struct Node<E> {
    time: Cycle,
    next: u32,
    payload: Option<E>,
}

/// Head/tail of one bucket's intrusive FIFO list.
#[derive(Debug, Clone, Copy)]
struct Bucket {
    head: u32,
    tail: u32,
}

const EMPTY_BUCKET: Bucket = Bucket {
    head: NIL,
    tail: NIL,
};

/// A time-ordered queue of simulation events backed by a hierarchical
/// timing wheel (see the [module docs](self) for the structure).
///
/// Drop-in replacement for the retired binary-heap queue: same API, same
/// observable behaviour — earliest time first, same-cycle events in
/// insertion order, the clock never moves backwards — at O(1) amortized
/// `schedule`/`pop` instead of O(log n).
#[derive(Debug, Clone)]
pub struct TimingWheel<E> {
    /// Node slab; free nodes are chained through `free`.
    nodes: Vec<Node<E>>,
    free: u32,
    /// `LEVELS × SLOTS` buckets, level-major.
    buckets: Vec<Bucket>,
    /// One occupancy bit per bucket, one word per level.
    occ: [u64; LEVELS],
    /// Bit `k` set iff level `k` has any occupied bucket (`occ[k] != 0`),
    /// so `seek` finds the lowest pending level in one `trailing_zeros`.
    summary: u16,
    len: usize,
    now: Cycle,
}

impl<E> Default for TimingWheel<E> {
    fn default() -> Self {
        Self::new()
    }
}

/// Location of the earliest pending event, as found by `seek`: either the
/// level-0 bucket holding the next cycle's FIFO, or a lone far-level event
/// that `seek` already detached (the sparse-queue fast path).
enum Next {
    Level0 { idx: usize, time: u64 },
    Single { node: u32, time: u64 },
}

/// `value` with the low `bits` bits cleared; total-shift safe (`bits ≥ 64`
/// clears everything, which is what the top wheel level needs).
#[inline]
fn clear_low(value: u64, bits: u32) -> u64 {
    if bits >= 64 {
        0
    } else {
        (value >> bits) << bits
    }
}

impl<E> TimingWheel<E> {
    /// Creates an empty wheel with the simulation clock at zero.
    pub fn new() -> Self {
        TimingWheel {
            nodes: Vec::new(),
            free: NIL,
            buckets: vec![EMPTY_BUCKET; LEVELS * SLOTS],
            occ: [0; LEVELS],
            summary: 0,
            len: 0,
            now: Cycle::ZERO,
        }
    }

    /// The current simulation time: the delivery time of the most recently
    /// popped event (zero before any event has been popped).
    pub fn now(&self) -> Cycle {
        self.now
    }

    /// Number of pending events.
    pub fn len(&self) -> usize {
        self.len
    }

    /// True if no events are pending.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Schedules `payload` for delivery at absolute time `time`.
    ///
    /// Scheduling an event in the past (before [`TimingWheel::now`]) is
    /// allowed but indicates a modelling error in the caller; the event is
    /// delivered at the *current* time (time never moves backwards), behind
    /// any event already pending for the current cycle.
    #[inline]
    pub fn schedule(&mut self, time: Cycle, payload: E) {
        let time = time.max(self.now);
        let node = self.alloc(time, payload);
        self.link(node, time.raw(), self.now.raw());
        self.len += 1;
    }

    /// Schedules `payload` for delivery `delay` cycles after the current
    /// simulation time.
    pub fn schedule_after(&mut self, delay: Cycle, payload: E) {
        let time = self.now + delay;
        self.schedule(time, payload);
    }

    /// Removes and returns the earliest pending event together with its
    /// delivery time, advancing the simulation clock to that time.
    ///
    /// Returns `None` when the queue is empty.
    #[inline]
    pub fn pop(&mut self) -> Option<(Cycle, E)> {
        if self.len == 0 {
            return None;
        }
        let (node, time) = match self.seek() {
            Next::Level0 { idx, time } => {
                let head = self.buckets[idx].head;
                let next = self.nodes[head as usize].next;
                self.buckets[idx].head = next;
                if next == NIL {
                    self.buckets[idx].tail = NIL;
                    self.clear_occ(0, idx);
                }
                (head, time)
            }
            // A lone far event is the global minimum; it was already
            // detached by `seek`.
            Next::Single { node, time } => (node, time),
        };
        let payload = self.release(node);
        self.len -= 1;
        self.now = Cycle::new(time);
        Some((self.now, payload))
    }

    /// Removes **every** event of the earliest pending cycle in one wheel
    /// operation, appending the payloads to `out` in FIFO order (after
    /// clearing it), and advances the clock to that cycle.
    ///
    /// Returns the cycle, or `None` when the queue is empty. Equivalent to
    /// calling [`pop`](TimingWheel::pop) while the next event's time equals
    /// the first popped time — but the whole same-cycle bucket is detached
    /// with a single occupancy scan, which is what lets the execution
    /// driver amortize per-cycle queue work. Events scheduled *for the same
    /// cycle while the batch is being processed* are picked up by the next
    /// call (they would also have been popped after the already-pending
    /// ones, so batch and serial delivery order are identical).
    #[inline]
    pub fn pop_batch(&mut self, out: &mut Vec<E>) -> Option<Cycle> {
        out.clear();
        if self.len == 0 {
            return None;
        }
        let time = match self.seek() {
            Next::Level0 { idx, time } => {
                let mut cur = self.buckets[idx].head;
                self.buckets[idx] = EMPTY_BUCKET;
                self.clear_occ(0, idx);
                while cur != NIL {
                    let next = self.nodes[cur as usize].next;
                    out.push(self.release(cur));
                    self.len -= 1;
                    cur = next;
                }
                time
            }
            // A lone far event is the global minimum and the only event of
            // its cycle: a batch of one, already detached by `seek`.
            Next::Single { node, time } => {
                out.push(self.release(node));
                self.len -= 1;
                time
            }
        };
        self.now = Cycle::new(time);
        Some(self.now)
    }

    /// Returns the delivery time of the earliest pending event without
    /// removing it.
    ///
    /// Unlike `pop`, this never restructures the wheel; when the earliest
    /// event sits in a far level it walks that one bucket's list (O(bucket)
    /// — fine for its diagnostic/test callers, while the hot `pop` path
    /// stays O(1)).
    pub fn peek_time(&self) -> Option<Cycle> {
        if self.len == 0 {
            return None;
        }
        let base = self.now.raw();
        let w0 = self.occ[0] & (!0u64 << (base & MASK));
        if w0 != 0 {
            let i = u64::from(w0.trailing_zeros());
            return Some(Cycle::new(clear_low(base, BITS) + i));
        }
        for level in 1..LEVELS {
            let shift = BITS * level as u32;
            let idx = (base >> shift) & MASK;
            let w = self.occ[level] & (!0u64 << idx);
            if w == 0 {
                continue;
            }
            // The first occupied bucket in seek order contains the global
            // minimum (later buckets of this level and all higher levels
            // start at later slot boundaries); its list is unordered across
            // cycles, so take the min over it.
            let bucket = level * SLOTS + w.trailing_zeros() as usize;
            let mut cur = self.buckets[bucket].head;
            let mut min = Cycle::MAX;
            while cur != NIL {
                min = min.min(self.nodes[cur as usize].time);
                cur = self.nodes[cur as usize].next;
            }
            return Some(min);
        }
        unreachable!(
            "timing wheel: {} pending events but no occupied bucket",
            self.len
        )
    }

    /// Drops every pending event and resets the clock to zero.
    pub fn clear(&mut self) {
        self.nodes.clear();
        self.free = NIL;
        self.buckets.fill(EMPTY_BUCKET);
        self.occ = [0; LEVELS];
        self.summary = 0;
        self.len = 0;
        self.now = Cycle::ZERO;
    }

    /// Locates the earliest pending event, cascading far-level buckets down
    /// as needed. Requires `len > 0`.
    ///
    /// Two invariants carry the correctness argument:
    ///
    /// * For every level `k ≥ 1` the bucket whose slot contains `now` is
    ///   empty — insertion files an event at level `k` only when its index
    ///   there differs from `now`'s, and the cursor empties each bucket as
    ///   it enters its slot.
    /// * No occupied bucket ever sits *below* the cursor's index at its
    ///   level (such an event would predate `now`), so whole-word
    ///   `trailing_zeros` over the occupancy finds the first pending bucket
    ///   without masking, and an all-levels `summary` bitmask finds the
    ///   lowest pending level without touching empty words.
    ///
    /// Together they also give the sparse-queue fast path: the first
    /// occupied bucket in scan order bounds every other event from below
    /// (later buckets of its level and all higher levels start at later
    /// slot boundaries), so when that bucket holds a *single* event it is
    /// the global minimum and is delivered directly — no level-by-level
    /// descent. This is the common case for the execution driver, whose
    /// queue holds roughly one in-flight event per simulated core, spread
    /// over task-duration-sized spans.
    #[inline]
    fn seek(&mut self) -> Next {
        let mut base = self.now.raw();
        loop {
            debug_assert_eq!(self.occ[0] & !(!0u64 << (base & MASK)), 0);
            let w0 = self.occ[0];
            if w0 != 0 {
                let i = u64::from(w0.trailing_zeros());
                return Next::Level0 {
                    idx: i as usize,
                    time: clear_low(base, BITS) + i,
                };
            }
            let far = self.summary & !1;
            assert!(
                far != 0,
                "timing wheel: {} pending events but no occupied bucket",
                self.len
            );
            let level = far.trailing_zeros() as usize;
            let shift = BITS * level as u32;
            debug_assert_eq!(self.occ[level] & !(!0u64 << ((base >> shift) & MASK)), 0);
            let j = u64::from(self.occ[level].trailing_zeros());
            let bucket = level * SLOTS + j as usize;
            let head = self.buckets[bucket].head;
            if self.nodes[head as usize].next == NIL {
                // Single event: detach it and deliver directly.
                self.buckets[bucket] = EMPTY_BUCKET;
                self.clear_occ(level, j as usize);
                return Next::Single {
                    node: head,
                    time: self.nodes[head as usize].time.raw(),
                };
            }
            let slot = clear_low(base, shift + BITS) | (j << shift);
            self.cascade(level, j as usize, slot);
            base = slot;
        }
    }

    /// Detaches the bucket at (`level`, `idx`) — whose slot starts at
    /// absolute time `slot` — and re-files every node one or more levels
    /// down, relative to the slot start. Walking the list head-to-tail and
    /// appending keeps the redistribution stable, which is how same-cycle
    /// FIFO order survives cascades.
    fn cascade(&mut self, level: usize, idx: usize, slot: u64) {
        let bucket = level * SLOTS + idx;
        let mut cur = self.buckets[bucket].head;
        self.buckets[bucket] = EMPTY_BUCKET;
        self.clear_occ(level, idx);
        while cur != NIL {
            let next = self.nodes[cur as usize].next;
            let time = self.nodes[cur as usize].time.raw();
            self.link(cur, time, slot);
            cur = next;
        }
    }

    /// Appends node `n` (delivery time `time ≥ anchor`) to the tail of the
    /// bucket selected relative to `anchor`: the lowest level at which
    /// `time` and `anchor` share all higher index bits.
    #[inline]
    fn link(&mut self, n: u32, time: u64, anchor: u64) {
        let diff = time ^ anchor;
        let level = if diff == 0 {
            0
        } else {
            ((63 - diff.leading_zeros()) / BITS) as usize
        };
        let idx = if BITS * level as u32 >= 64 {
            0 // unreachable with BITS=6 (top level shift is 60), kept total
        } else {
            ((time >> (BITS * level as u32)) & MASK) as usize
        };
        let bucket = level * SLOTS + idx;
        self.nodes[n as usize].next = NIL;
        if self.buckets[bucket].tail == NIL {
            self.buckets[bucket].head = n;
            self.occ[level] |= 1u64 << idx;
            self.summary |= 1u16 << level;
        } else {
            let tail = self.buckets[bucket].tail as usize;
            self.nodes[tail].next = n;
        }
        self.buckets[bucket].tail = n;
    }

    /// Clears the occupancy bit of bucket (`level`, `idx`), dropping the
    /// level from the summary when it empties.
    #[inline]
    fn clear_occ(&mut self, level: usize, idx: usize) {
        self.occ[level] &= !(1u64 << idx);
        if self.occ[level] == 0 {
            self.summary &= !(1u16 << level);
        }
    }

    /// Takes a node from the free list (or grows the slab).
    #[inline]
    fn alloc(&mut self, time: Cycle, payload: E) -> u32 {
        if self.free != NIL {
            let n = self.free;
            let node = &mut self.nodes[n as usize];
            self.free = node.next;
            node.time = time;
            node.payload = Some(payload);
            n
        } else {
            let n = self.nodes.len();
            assert!(n < NIL as usize, "timing wheel node slab exhausted");
            self.nodes.push(Node {
                time,
                next: NIL,
                payload: Some(payload),
            });
            n as u32
        }
    }

    /// Returns node `n`'s payload and chains the node onto the free list.
    #[inline]
    fn release(&mut self, n: u32) -> E {
        let node = &mut self.nodes[n as usize];
        let payload = node.payload.take().expect("released an empty wheel node");
        node.next = self.free;
        self.free = n;
        payload
    }
}

// Snapshot support. A wheel's internal layout (node slab, bucket chains,
// cascade progress) is an artifact of its history, so the exact struct is
// not what gets persisted: the *observable* state is the clock plus the
// pending events in delivery order. Saving drains a clone in pop order;
// loading starts a fresh wheel at the saved clock and re-schedules the
// events in that order, which reproduces delivery order exactly —
// `schedule` files each event relative to `now`, and same-cycle events
// are FIFO by insertion, which is the order they were written in.
impl<E: crate::snapshot::Persist + Clone> crate::snapshot::Persist for TimingWheel<E> {
    fn save(&self, out: &mut Vec<u8>) {
        self.now.save(out);
        (self.len as u64).save(out);
        let mut drain = self.clone();
        while let Some((time, payload)) = drain.pop() {
            time.save(out);
            payload.save(out);
        }
    }

    fn load(r: &mut crate::snapshot::Reader<'_>) -> Result<Self, crate::snapshot::SnapshotError> {
        let now = Cycle::load(r)?;
        let len = u64::load(r)?;
        let mut wheel = TimingWheel::new();
        wheel.now = now;
        let mut previous = now;
        for _ in 0..len {
            let time = Cycle::load(r)?;
            let payload = E::load(r)?;
            if time < previous {
                return Err(crate::snapshot::SnapshotError::Corrupt {
                    context: format!(
                        "timing-wheel events out of order: {} after {} (clock {})",
                        time.raw(),
                        previous.raw(),
                        now.raw()
                    ),
                });
            }
            previous = time;
            wheel.schedule(time, payload);
        }
        Ok(wheel)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn level_count_covers_u64() {
        assert_eq!(LEVELS, 11);
        assert!(BITS as usize * LEVELS >= 64);
    }

    #[test]
    fn pops_in_time_order_across_levels() {
        let mut q = TimingWheel::new();
        // One event per wheel level's span.
        let times: Vec<u64> = (0..LEVELS as u32).map(|k| 1u64 << (BITS * k)).collect();
        for &t in times.iter().rev() {
            q.schedule(Cycle::new(t), t);
        }
        for &t in &times {
            assert_eq!(q.pop(), Some((Cycle::new(t), t)));
        }
        assert_eq!(q.pop(), None);
    }

    #[test]
    fn same_cycle_fifo_survives_cascades() {
        let mut q = TimingWheel::new();
        // All in one far-future cycle, scheduled in a recognisable order;
        // the cycle sits several cascade levels away from now.
        let t = Cycle::new(5 * 4096 + 7 * 64 + 3);
        for i in 0..100 {
            q.schedule(t, i);
        }
        // Force the cursor to advance through intermediate windows first.
        q.schedule(Cycle::new(10), -1);
        assert_eq!(q.pop(), Some((Cycle::new(10), -1)));
        let order: Vec<i32> = std::iter::from_fn(|| q.pop().map(|(_, e)| e)).collect();
        assert_eq!(order, (0..100).collect::<Vec<_>>());
    }

    #[test]
    fn pop_batch_drains_exactly_one_cycle() {
        let mut q = TimingWheel::new();
        q.schedule(Cycle::new(5), 'a');
        q.schedule(Cycle::new(9), 'c');
        q.schedule(Cycle::new(5), 'b');
        let mut batch = Vec::new();
        assert_eq!(q.pop_batch(&mut batch), Some(Cycle::new(5)));
        assert_eq!(batch, vec!['a', 'b']);
        assert_eq!(q.len(), 1);
        assert_eq!(q.now(), Cycle::new(5));
        assert_eq!(q.pop_batch(&mut batch), Some(Cycle::new(9)));
        assert_eq!(batch, vec!['c']);
        assert_eq!(q.pop_batch(&mut batch), None);
        assert!(batch.is_empty());
    }

    #[test]
    fn same_cycle_events_scheduled_mid_batch_form_the_next_batch() {
        let mut q = TimingWheel::new();
        q.schedule(Cycle::new(5), "first");
        let mut batch = Vec::new();
        q.pop_batch(&mut batch);
        assert_eq!(batch, vec!["first"]);
        // "Mid-batch": now == 5, schedule more work for cycle 5.
        q.schedule(Cycle::new(5), "second");
        q.schedule(Cycle::new(5), "third");
        assert_eq!(q.pop_batch(&mut batch), Some(Cycle::new(5)));
        assert_eq!(batch, vec!["second", "third"]);
    }

    #[test]
    fn past_events_deliver_at_the_current_time() {
        let mut q = TimingWheel::new();
        q.schedule(Cycle::new(100), "future");
        q.pop();
        q.schedule(Cycle::new(10), "past");
        let (t, e) = q.pop().unwrap();
        assert_eq!((t, e), (Cycle::new(100), "past"));
        assert_eq!(q.now(), Cycle::new(100));
    }

    #[test]
    fn cycle_max_adjacent_times_work() {
        let mut q = TimingWheel::new();
        q.schedule(Cycle::MAX, "max");
        q.schedule(Cycle::new(u64::MAX - 1), "almost");
        q.schedule(Cycle::new(1), "now-ish");
        assert_eq!(q.pop(), Some((Cycle::new(1), "now-ish")));
        assert_eq!(q.peek_time(), Some(Cycle::new(u64::MAX - 1)));
        assert_eq!(q.pop(), Some((Cycle::new(u64::MAX - 1), "almost")));
        assert_eq!(q.pop(), Some((Cycle::MAX, "max")));
        assert_eq!(q.now(), Cycle::MAX);
        // Scheduling at MAX again still delivers (clamped semantics).
        q.schedule(Cycle::MAX, "again");
        assert_eq!(q.pop(), Some((Cycle::MAX, "again")));
    }

    #[test]
    fn peek_reaches_into_far_levels_without_mutating() {
        let mut q = TimingWheel::new();
        q.schedule(Cycle::new(1 << 30), 1);
        q.schedule(Cycle::new(1 << 20), 2);
        assert_eq!(q.peek_time(), Some(Cycle::new(1 << 20)));
        assert_eq!(q.len(), 2);
        assert_eq!(q.pop(), Some((Cycle::new(1 << 20), 2)));
    }

    #[test]
    fn clear_resets_and_slab_is_reused() {
        let mut q = TimingWheel::new();
        for i in 0..32 {
            q.schedule(Cycle::new(i), i);
        }
        q.clear();
        assert!(q.is_empty());
        assert_eq!(q.now(), Cycle::ZERO);
        assert_eq!(q.pop(), None);
        // Steady-state churn reuses freed nodes instead of growing the slab.
        q.schedule(Cycle::new(1), 0);
        q.pop();
        let nodes_after_first = q.nodes.len();
        for i in 2..1000 {
            q.schedule(Cycle::new(i), i);
            q.pop();
        }
        assert_eq!(q.nodes.len(), nodes_after_first);
    }
}
