//! A fast deterministic hasher for the simulator's integer-keyed maps.
//!
//! The incremental engines, the streaming feed, and the locality model key
//! their state by task index or dependence address — small integers with
//! plenty of entropy in the low bits. `std`'s default SipHash is
//! DoS-resistant but measurably slow on these hot paths (the
//! dependence-matching maps are touched a few times per simulated task);
//! this Fibonacci-multiply hasher is the classic FxHash-style alternative,
//! inlined here because the workspace builds offline. Determinism note: no
//! simulator behaviour may depend on map iteration order regardless of
//! hasher (see `ARCHITECTURE.md`), so the hasher choice is a
//! pure-performance decision. The `tdm-lint` D1 lint rejects default-hasher
//! maps in deterministic code; `FastMap` is the sanctioned replacement, so
//! this definition site carries the one legitimate allow.

// tdm-lint: allow(D1): this is FastMap's definition site — the alias below pins the hasher.
use std::collections::HashMap;
use std::hash::{BuildHasherDefault, Hasher};

/// `HashMap` with the fast integer hasher.
pub type FastMap<K, V> = HashMap<K, V, BuildHasherDefault<FastHasher>>;

/// Multiplicative hasher: one wrapping multiply by the 64-bit golden-ratio
/// constant per written word.
#[derive(Debug, Clone, Copy, Default)]
pub struct FastHasher {
    state: u64,
}

impl Hasher for FastHasher {
    fn finish(&self) -> u64 {
        self.state
    }

    fn write(&mut self, bytes: &[u8]) {
        // Generic path (not hit by the integer keys we use): fold in 8-byte
        // chunks.
        for chunk in bytes.chunks(8) {
            let mut word = [0u8; 8];
            word[..chunk.len()].copy_from_slice(chunk);
            self.write_u64(u64::from_le_bytes(word));
        }
    }

    fn write_u64(&mut self, value: u64) {
        self.state = (self.state.rotate_left(5) ^ value).wrapping_mul(0x9E37_79B9_7F4A_7C15);
    }

    fn write_usize(&mut self, value: usize) {
        self.write_u64(value as u64);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn distinct_keys_hash_distinctly_enough() {
        let mut map: FastMap<u64, u64> = FastMap::default();
        for i in 0..10_000u64 {
            map.insert(i * 64, i);
        }
        assert_eq!(map.len(), 10_000);
        for i in 0..10_000u64 {
            assert_eq!(map.get(&(i * 64)), Some(&i));
        }
    }

    #[test]
    fn hashing_is_deterministic() {
        let mut a = FastHasher::default();
        let mut b = FastHasher::default();
        a.write_u64(0xDEAD_BEEF);
        b.write_u64(0xDEAD_BEEF);
        assert_eq!(a.finish(), b.finish());
        assert_ne!(a.finish(), 0);
    }
}
