//! # tdm-sim — discrete-event multicore timing substrate
//!
//! This crate provides the simulation substrate used by the TDM (Task
//! Dependence Manager) reproduction: a cycle-granular clock, the simulated
//! chip configuration (Table I of the paper), a deterministic discrete-event
//! queue, per-core phase accounting (the DEPS / SCHED / EXEC / IDLE breakdown
//! of Figure 2), a simple per-core data-locality model and a network-on-chip
//! latency model for core ↔ DMU messages.
//!
//! The paper evaluates TDM on gem5 full-system simulation; this substrate
//! replaces gem5 with a discrete-event simulator that operates at the
//! granularity of runtime-system phases and hardware-structure accesses.
//! Because every result in the paper is expressed in terms of those phases
//! (time breakdowns, speedups, EDP), this level of detail preserves the shape
//! of the evaluation while remaining laptop-scale.
//!
//! # Example
//!
//! ```
//! use tdm_sim::clock::{Cycle, Frequency};
//! use tdm_sim::config::ChipConfig;
//!
//! let chip = ChipConfig::default();
//! assert_eq!(chip.num_cores, 32);
//! // A 183 microsecond Cholesky task at 2 GHz:
//! let cycles = chip.frequency.cycles_from_micros(183.0);
//! assert_eq!(cycles, Cycle::new(366_000));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod cache;
pub mod clock;
pub mod config;
pub mod event;
pub mod fast_map;
pub mod noc;
pub mod rng;
pub mod snapshot;
pub mod stats;

pub use cache::LocalityModel;
pub use clock::{Cycle, Frequency};
pub use config::{ChipConfig, CoreConfig, MemoryConfig};
pub use event::EventQueue;
pub use fast_map::{FastHasher, FastMap};
pub use noc::NocModel;
pub use snapshot::{Persist, Snapshot, SnapshotError};
pub use stats::{CoreBreakdown, Phase, SimStats};
