//! Network-on-chip latency model for core ↔ DMU traffic.
//!
//! The DMU is a centralized module attached to the NoC (Figure 3 of the
//! paper). Every TDM ISA instruction therefore pays a request/response round
//! trip between the issuing core and the DMU in addition to the DMU's own
//! processing time. The paper notes that DMU operations take "tens to
//! hundreds of ns" per task, five orders of magnitude below the average task
//! duration, so the NoC model only needs to be plausible, not detailed: we
//! model a 2D mesh with the DMU at the center and per-hop latency from the
//! chip configuration.

use serde::{Deserialize, Serialize};

use crate::clock::Cycle;
use crate::config::ChipConfig;

/// Latency model for messages between cores and the centralized DMU.
///
/// # Example
///
/// ```
/// use tdm_sim::config::ChipConfig;
/// use tdm_sim::noc::NocModel;
///
/// let chip = ChipConfig::default();
/// let noc = NocModel::from_chip(&chip);
/// // A core in the middle of the mesh is closer to the DMU than a corner core.
/// assert!(noc.round_trip(0) >= noc.round_trip(noc.nearest_core()));
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct NocModel {
    /// Mesh width (`ceil(sqrt(num_cores))`).
    width: usize,
    /// Number of cores (tiles that generate traffic).
    num_cores: usize,
    /// Latency of one mesh hop, in cycles.
    hop_latency: Cycle,
    /// Router/injection overhead per message, in cycles.
    fixed_overhead: Cycle,
    /// DMU tile coordinates within the mesh.
    dmu_x: usize,
    dmu_y: usize,
}

impl NocModel {
    /// Builds the NoC model implied by a [`ChipConfig`]: a square-ish mesh of
    /// the chip's cores with the DMU placed at the central tile.
    pub fn from_chip(chip: &ChipConfig) -> Self {
        Self::new(chip.num_cores, chip.noc_hop_latency, Cycle::new(1))
    }

    /// Creates a mesh NoC model for `num_cores` tiles with the given per-hop
    /// latency and fixed per-message overhead.
    ///
    /// # Panics
    ///
    /// Panics if `num_cores` is zero.
    pub fn new(num_cores: usize, hop_latency: Cycle, fixed_overhead: Cycle) -> Self {
        assert!(num_cores > 0, "NoC needs at least one core");
        let width = (num_cores as f64).sqrt().ceil() as usize;
        NocModel {
            width,
            num_cores,
            hop_latency,
            fixed_overhead,
            dmu_x: width / 2,
            dmu_y: width.div_ceil(2).saturating_sub(1).max(width / 2),
        }
    }

    /// Mesh coordinates of a core.
    fn coords(&self, core: usize) -> (usize, usize) {
        (core % self.width, core / self.width)
    }

    /// Manhattan distance in hops from `core` to the DMU tile.
    ///
    /// # Panics
    ///
    /// Panics if `core` is out of range.
    pub fn hops(&self, core: usize) -> u64 {
        assert!(core < self.num_cores, "core {core} out of range");
        let (x, y) = self.coords(core);
        (x.abs_diff(self.dmu_x) + y.abs_diff(self.dmu_y)) as u64
    }

    /// One-way latency of a message from `core` to the DMU.
    pub fn one_way(&self, core: usize) -> Cycle {
        self.fixed_overhead + self.hop_latency.scaled(self.hops(core))
    }

    /// Round-trip latency (request + response) between `core` and the DMU.
    pub fn round_trip(&self, core: usize) -> Cycle {
        self.one_way(core).scaled(2)
    }

    /// Average round-trip latency over all cores.
    pub fn average_round_trip(&self) -> Cycle {
        let total: u64 = (0..self.num_cores).map(|c| self.round_trip(c).raw()).sum();
        Cycle::new(total / self.num_cores as u64)
    }

    /// The core with the smallest distance to the DMU.
    pub fn nearest_core(&self) -> usize {
        (0..self.num_cores)
            .min_by_key(|&c| self.hops(c))
            .expect("num_cores > 0")
    }

    /// Number of cores this model was built for.
    pub fn num_cores(&self) -> usize {
        self.num_cores
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mesh_width_is_ceil_sqrt() {
        let noc = NocModel::new(32, Cycle::new(2), Cycle::new(1));
        assert_eq!(noc.width, 6);
        let noc = NocModel::new(16, Cycle::new(2), Cycle::new(1));
        assert_eq!(noc.width, 4);
    }

    #[test]
    fn hops_are_manhattan_distance() {
        let noc = NocModel::new(16, Cycle::new(1), Cycle::ZERO);
        // width = 4, DMU at (2, 2) for a 4-wide mesh.
        let (dx, dy) = (noc.dmu_x, noc.dmu_y);
        // Core 0 is at (0, 0).
        assert_eq!(noc.hops(0), (dx + dy) as u64);
        // The DMU tile's own core (if any) has zero hops.
        let dmu_core = dy * 4 + dx;
        if dmu_core < 16 {
            assert_eq!(noc.hops(dmu_core), 0);
        }
    }

    #[test]
    fn round_trip_is_twice_one_way() {
        let noc = NocModel::new(32, Cycle::new(2), Cycle::new(1));
        for core in 0..32 {
            assert_eq!(noc.round_trip(core), noc.one_way(core).scaled(2));
        }
    }

    #[test]
    fn nearest_core_has_minimal_latency() {
        let noc = NocModel::new(32, Cycle::new(2), Cycle::new(1));
        let nearest = noc.nearest_core();
        for core in 0..32 {
            assert!(noc.round_trip(nearest) <= noc.round_trip(core));
        }
    }

    #[test]
    fn average_round_trip_between_min_and_max() {
        let noc = NocModel::new(32, Cycle::new(2), Cycle::new(1));
        let avg = noc.average_round_trip();
        let min = (0..32).map(|c| noc.round_trip(c)).min().unwrap();
        let max = (0..32).map(|c| noc.round_trip(c)).max().unwrap();
        assert!(avg >= min && avg <= max);
    }

    #[test]
    fn from_chip_uses_chip_parameters() {
        let chip = ChipConfig::default();
        let noc = NocModel::from_chip(&chip);
        assert_eq!(noc.num_cores(), chip.num_cores);
        assert_eq!(noc.hop_latency, chip.noc_hop_latency);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn hops_rejects_out_of_range_core() {
        let noc = NocModel::new(4, Cycle::new(1), Cycle::ZERO);
        let _ = noc.hops(4);
    }

    #[test]
    #[should_panic(expected = "at least one core")]
    fn zero_cores_panics() {
        let _ = NocModel::new(0, Cycle::new(1), Cycle::ZERO);
    }

    #[test]
    fn single_core_mesh_works() {
        let noc = NocModel::new(1, Cycle::new(2), Cycle::new(1));
        assert_eq!(noc.hops(0), 0);
        assert_eq!(noc.round_trip(0), Cycle::new(2));
    }
}
