//! Small deterministic pseudo-random number generator.
//!
//! The simulator occasionally needs cheap, reproducible randomness — e.g. to
//! jitter task durations so that perfectly symmetric workloads do not finish
//! in lock-step, which real systems never do. This module provides a tiny
//! SplitMix64 generator so the simulation substrate stays dependency-light
//! and bit-for-bit reproducible across platforms (workload generation and the
//! integration tests use it too, so the whole workspace shares one seeding
//! story).
//!
//! # Seeding contract
//!
//! Every source of randomness in a simulated run derives from a single `u64`
//! seed (`ExecConfig::seed` in `tdm-runtime`), under these rules:
//!
//! 1. **Pure function of the seed.** [`SplitMix64::new`] is the only way
//!    randomness enters the system; there is no global RNG, no
//!    time/thread/platform dependence. Two runs with the same seed and the
//!    same inputs produce bit-identical cycle counts.
//! 2. **Derived streams, not shared streams.** A consumer that needs
//!    per-entity randomness (e.g. per-task duration jitter) must derive an
//!    independent generator per entity — `SplitMix64::new(seed ^ f(entity))`
//!    — rather than draw from one shared stream, so results do not depend on
//!    the order in which entities are visited (schedulers and backends may
//!    reorder them).
//! 3. **Ties never consult the RNG.** Simultaneous events are delivered by
//!    the [`EventQueue`](crate::event::EventQueue) in insertion order —
//!    structurally, via the timing wheel's per-cycle FIFO buckets — never by
//!    randomness, so determinism does not depend on rule 2 being applied to
//!    event ordering.
//!
//! The conformance suite (`tests/conformance/determinism.rs` at the
//! workspace root) enforces the end-to-end consequence: identical
//! `RunReport`s, schedules and makespans across repeated seeded runs.

use serde::{Deserialize, Serialize};

/// A SplitMix64 pseudo-random number generator.
///
/// SplitMix64 passes BigCrush, has a full 2^64 period over its state, and is
/// only a handful of arithmetic operations — plenty for duration jitter and
/// deterministic tie-breaking.
///
/// # Example
///
/// ```
/// use tdm_sim::rng::SplitMix64;
///
/// let mut a = SplitMix64::new(42);
/// let mut b = SplitMix64::new(42);
/// assert_eq!(a.next_u64(), b.next_u64()); // same seed, same stream
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    /// Creates a generator from a seed. Any seed, including zero, is valid.
    pub fn new(seed: u64) -> Self {
        SplitMix64 { state: seed }
    }

    /// Returns the next 64-bit value in the stream.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Returns a uniformly distributed `f64` in `[0, 1)`.
    pub fn next_f64(&mut self) -> f64 {
        // 53 random mantissa bits.
        (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }

    /// Returns a uniformly distributed value in `[0, bound)`.
    ///
    /// # Panics
    ///
    /// Panics if `bound` is zero.
    pub fn next_below(&mut self, bound: u64) -> u64 {
        assert!(bound > 0, "bound must be non-zero");
        // Multiply-shift range reduction; bias is negligible for simulation
        // purposes (bounds are tiny relative to 2^64).
        ((u128::from(self.next_u64()) * u128::from(bound)) >> 64) as u64
    }

    /// Returns a multiplicative jitter factor uniformly distributed in
    /// `[1 - spread, 1 + spread]`.
    ///
    /// # Panics
    ///
    /// Panics if `spread` is negative or not less than 1.
    pub fn jitter(&mut self, spread: f64) -> f64 {
        assert!(
            (0.0..1.0).contains(&spread),
            "spread must be in [0, 1), got {spread}"
        );
        1.0 + (self.next_f64() * 2.0 - 1.0) * spread
    }
}

// Snapshot support: the generator *is* its 64-bit state, so a checkpointed
// stream resumes exactly where it left off. (The driver's per-task jitter
// streams are derived fresh from the seed and task index and never live
// across a checkpoint; this impl covers any source-embedded RNG state.)
impl crate::snapshot::Persist for SplitMix64 {
    fn save(&self, out: &mut Vec<u8>) {
        crate::snapshot::Persist::save(&self.state, out);
    }

    fn load(r: &mut crate::snapshot::Reader<'_>) -> Result<Self, crate::snapshot::SnapshotError> {
        Ok(SplitMix64 {
            state: <u64 as crate::snapshot::Persist>::load(r)?,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_seed_same_stream() {
        let mut a = SplitMix64::new(123);
        let mut b = SplitMix64::new(123);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = SplitMix64::new(1);
        let mut b = SplitMix64::new(2);
        let same = (0..10).filter(|_| a.next_u64() == b.next_u64()).count();
        assert!(
            same < 10,
            "distinct seeds should not produce identical streams"
        );
    }

    #[test]
    fn f64_is_in_unit_interval() {
        let mut rng = SplitMix64::new(7);
        for _ in 0..1000 {
            let x = rng.next_f64();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn next_below_respects_bound() {
        let mut rng = SplitMix64::new(9);
        for _ in 0..1000 {
            assert!(rng.next_below(13) < 13);
        }
    }

    #[test]
    fn next_below_covers_small_ranges() {
        let mut rng = SplitMix64::new(11);
        let mut seen = [false; 4];
        for _ in 0..200 {
            seen[rng.next_below(4) as usize] = true;
        }
        assert!(
            seen.iter().all(|&s| s),
            "all residues should appear: {seen:?}"
        );
    }

    #[test]
    #[should_panic(expected = "non-zero")]
    fn next_below_zero_panics() {
        let mut rng = SplitMix64::new(1);
        let _ = rng.next_below(0);
    }

    #[test]
    fn jitter_stays_within_spread() {
        let mut rng = SplitMix64::new(5);
        for _ in 0..1000 {
            let j = rng.jitter(0.1);
            assert!((0.9..=1.1).contains(&j));
        }
    }

    #[test]
    fn zero_spread_jitter_is_one() {
        let mut rng = SplitMix64::new(5);
        assert_eq!(rng.jitter(0.0), 1.0);
    }

    #[test]
    #[should_panic(expected = "spread")]
    fn jitter_rejects_out_of_range_spread() {
        let mut rng = SplitMix64::new(5);
        let _ = rng.jitter(1.0);
    }

    #[test]
    fn mean_of_f64_is_roughly_half() {
        let mut rng = SplitMix64::new(99);
        let n = 10_000;
        let sum: f64 = (0..n).map(|_| rng.next_f64()).sum();
        let mean = sum / n as f64;
        assert!((mean - 0.5).abs() < 0.02, "mean {mean} too far from 0.5");
    }
}
