//! Versioned binary snapshot codec for checkpoint/restart.
//!
//! Long-running regions (billion-task streams, multi-hour sweeps) need to
//! survive a job-slot boundary: the driver periodically captures its full
//! mid-run state into a [`Snapshot`], writes it to disk, and a later process
//! restores it and continues — producing the exact same [`RunReport`] a
//! straight-through run would have produced (this is pinned by the
//! `snapshot` conformance suite).
//!
//! This module owns the *container format* and the low-level field codec;
//! the driver-level capture/restore logic lives above it in
//! `tdm_runtime::exec` (`simulate_stream_checkpointed` / `resume_stream`),
//! because the state being captured — engines, schedulers, task feeds —
//! is defined in the upper crates. The byte-level layout is specified in
//! `SNAPSHOT_FORMAT.md` at the repository root; the format document and
//! the [`SECTIONS`] registry below are kept in lockstep by a conformance
//! test that enumerates one against the other.
//!
//! # Container layout
//!
//! A snapshot file is a fixed header, a section table, and concatenated
//! section payloads (all integers little-endian):
//!
//! ```text
//! offset  size  field
//! 0       8     magic  b"TDMSNAP\0"
//! 8       4     format version (currently 2)
//! 12      4     section count N
//! 16      24*N  section table: { id: u32, offset: u64, len: u64, crc: u32 }
//! ...           payloads, at the offsets recorded in the table
//! ```
//!
//! Every section payload carries a CRC-32 (IEEE) in the table, checked on
//! load; a reader rejects bad magic, future format versions, truncated
//! files and corrupt payloads with distinct, actionable [`SnapshotError`]s.
//!
//! # Field codec
//!
//! Section payloads are encoded with the [`Persist`] trait: fixed-width
//! little-endian integers, `u64` length prefixes for sequences, `u8` tags
//! for options and enums, IEEE-754 bit patterns for floats. The encoding
//! has no self-description — reader and writer must agree on the layout,
//! which is exactly what the format version in the header pins.
//!
//! # Example
//!
//! ```
//! use tdm_sim::snapshot::{Persist, Reader, Snapshot, section};
//!
//! let mut payload = Vec::new();
//! 42u64.save(&mut payload);
//! let mut snap = Snapshot::new();
//! snap.add_section(section::DRIVER, payload);
//!
//! let bytes = snap.to_bytes();
//! let back = Snapshot::from_bytes(&bytes).unwrap();
//! let mut r = Reader::new(back.section(section::DRIVER).unwrap());
//! assert_eq!(u64::load(&mut r).unwrap(), 42);
//! ```
//!
//! [`RunReport`]: https://docs.rs/tdm-runtime

use std::collections::VecDeque;
use std::fmt;

use crate::clock::Cycle;

/// The 8-byte file magic: `TDMSNAP` plus a NUL terminator.
pub const MAGIC: [u8; 8] = *b"TDMSNAP\0";

/// Current snapshot format version. Bumped whenever any section layout or
/// the container itself changes incompatibly; readers reject snapshots
/// written by a *newer* format outright (no forward compatibility), and
/// this reproduction keeps no legacy decoders — an old snapshot is
/// regenerated, not migrated (see `SNAPSHOT_FORMAT.md`, "Versioning").
pub const FORMAT_VERSION: u32 = 2;

/// Well-known section identifiers.
///
/// Each constant names one section a snapshot producer may write; the
/// [`SECTIONS`] registry pairs every id with its name and a summary, and
/// `SNAPSHOT_FORMAT.md` documents the payload layout of each. IDs are
/// never reused: a retired section's id is retired with it.
pub mod section {
    /// Run identity: feed kind, workload name, backend, scheduler, and the
    /// execution-config fingerprint the resume path validates against.
    pub const META: u32 = 0x01;
    /// Driver scalars and per-core state: simulated clock, creation cursor,
    /// finish count, running tasks, idle bookkeeping, makespan-so-far.
    pub const DRIVER: u32 = 0x02;
    /// Event queue: the timing wheel's current cycle and every pending
    /// event in pop order.
    pub const EVENTS: u32 = 0x03;
    /// Simulation statistics accumulated so far (per-core phase breakdowns,
    /// task and DMU counters).
    pub const STATS: u32 = 0x04;
    /// Data-locality model: per-core MRU block lists.
    pub const LOCALITY: u32 = 0x05;
    /// Ready-pool (scheduler) state, including the Age policy's sequence
    /// ring.
    pub const SCHEDULER: u32 = 0x06;
    /// Dependence-engine state: software tracking tables, or the DMU slabs
    /// (alias/task/dependence tables, list arrays, ready queue) plus the
    /// engine-level descriptor bookkeeping.
    pub const ENGINE: u32 = 0x07;
    /// Task-feed state: the source cursor plus the bounded in-flight window
    /// of task specs (cursors, not buffered future tasks — see
    /// `ARCHITECTURE.md`).
    pub const FEED: u32 = 0x08;
    /// Schedule trace rows captured so far (present only when
    /// `ExecConfig::trace_schedule` is on).
    pub const TRACE: u32 = 0x09;
    /// `bench_scale` resume parameters: benchmark name, scaled task count,
    /// and the flags needed to rebuild the generator on resume.
    pub const BENCH: u32 = 0x0A;
    /// Fault-injection bookkeeping: per-task failure counts, per-core
    /// completion counts, the retired-core bitmap, the pending-retry queue
    /// and the fault/retry counters. All-zero when fault injection is off.
    pub const FAULT: u32 = 0x0B;
}

/// One entry of the [`SECTIONS`] registry.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SectionInfo {
    /// Section identifier as stored in the section table.
    pub id: u32,
    /// Canonical upper-case name, as used in `SNAPSHOT_FORMAT.md`.
    pub name: &'static str,
    /// One-line summary of what the section holds.
    pub summary: &'static str,
}

/// Registry of every section id any producer in this workspace writes.
///
/// `SNAPSHOT_FORMAT.md` must describe exactly these sections; the
/// `snapshot` conformance suite enumerates this table against the
/// document's section table and against the ids captured snapshots
/// actually contain.
pub const SECTIONS: &[SectionInfo] = &[
    SectionInfo {
        id: section::META,
        name: "META",
        summary: "run identity and config fingerprint",
    },
    SectionInfo {
        id: section::DRIVER,
        name: "DRIVER",
        summary: "driver scalars and per-core state",
    },
    SectionInfo {
        id: section::EVENTS,
        name: "EVENTS",
        summary: "timing-wheel clock and pending events",
    },
    SectionInfo {
        id: section::STATS,
        name: "STATS",
        summary: "simulation statistics accumulated so far",
    },
    SectionInfo {
        id: section::LOCALITY,
        name: "LOCALITY",
        summary: "per-core cache-residency lists",
    },
    SectionInfo {
        id: section::SCHEDULER,
        name: "SCHEDULER",
        summary: "ready-pool state",
    },
    SectionInfo {
        id: section::ENGINE,
        name: "ENGINE",
        summary: "dependence-engine state (software tables or DMU slabs)",
    },
    SectionInfo {
        id: section::FEED,
        name: "FEED",
        summary: "task-source cursor and in-flight window",
    },
    SectionInfo {
        id: section::TRACE,
        name: "TRACE",
        summary: "schedule trace rows",
    },
    SectionInfo {
        id: section::BENCH,
        name: "BENCH",
        summary: "bench_scale generator parameters for resume",
    },
    SectionInfo {
        id: section::FAULT,
        name: "FAULT",
        summary: "fault-injection bookkeeping and retry queue",
    },
];

/// Looks up a section id in the [`SECTIONS`] registry.
pub fn section_info(id: u32) -> Option<&'static SectionInfo> {
    SECTIONS.iter().find(|s| s.id == id)
}

/// Errors produced while encoding, decoding or validating a snapshot.
///
/// Every variant renders to a message that tells the operator what is
/// wrong with the file and what to do about it.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SnapshotError {
    /// The file does not start with [`MAGIC`] — it is not a snapshot.
    BadMagic {
        /// The first eight bytes actually found.
        found: [u8; 8],
    },
    /// The file was written by a newer format than this build understands.
    UnsupportedVersion {
        /// Version recorded in the file header.
        found: u32,
        /// Highest version this build can read.
        supported: u32,
    },
    /// The file ends before the structure it promises (header, section
    /// table, or a section payload).
    Truncated {
        /// What was being read when the data ran out.
        context: &'static str,
    },
    /// A section payload does not match its recorded CRC-32.
    CrcMismatch {
        /// Identifier of the damaged section.
        section: u32,
    },
    /// A section the restore path requires is absent.
    MissingSection {
        /// Identifier of the absent section.
        section: u32,
    },
    /// A payload decoded structurally but its contents are inconsistent
    /// (bad enum tag, trailing bytes, out-of-range index, or a snapshot
    /// that does not match the run configuration it is being resumed
    /// into).
    Corrupt {
        /// Human-readable description of the inconsistency.
        context: String,
    },
    /// An underlying file read/write failed.
    Io(String),
}

impl fmt::Display for SnapshotError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SnapshotError::BadMagic { found } => write!(
                f,
                "not a TDM snapshot: file starts with {found:02x?} instead of the \
                 \"TDMSNAP\\0\" magic — the path probably points at the wrong file"
            ),
            SnapshotError::UnsupportedVersion { found, supported } => write!(
                f,
                "snapshot format version {found} is newer than the highest version this \
                 build reads ({supported}) — re-run with the build that wrote the \
                 snapshot, or regenerate it with this one"
            ),
            SnapshotError::Truncated { context } => write!(
                f,
                "snapshot is truncated while reading {context} — the file was cut short \
                 (incomplete write or copy); take a fresh checkpoint"
            ),
            SnapshotError::CrcMismatch { section } => {
                let name = section_info(*section).map(|s| s.name).unwrap_or("unknown");
                write!(
                    f,
                    "CRC mismatch in section {section:#04x} ({name}) — the snapshot is \
                     corrupt on disk; take a fresh checkpoint"
                )
            }
            SnapshotError::MissingSection { section } => {
                let name = section_info(*section).map(|s| s.name).unwrap_or("unknown");
                write!(
                    f,
                    "snapshot has no section {section:#04x} ({name}) — it was written by \
                     a different run mode and cannot be resumed this way"
                )
            }
            SnapshotError::Corrupt { context } => {
                write!(f, "snapshot payload is inconsistent: {context}")
            }
            SnapshotError::Io(msg) => write!(f, "snapshot I/O failed: {msg}"),
        }
    }
}

impl std::error::Error for SnapshotError {}

// ---------------------------------------------------------------------------
// CRC-32 (IEEE 802.3, reflected, polynomial 0xEDB88320)
// ---------------------------------------------------------------------------

const fn crc32_table() -> [u32; 256] {
    let mut table = [0u32; 256];
    let mut i = 0;
    while i < 256 {
        // tdm-lint: allow(C1): `i < 256` always fits in u32, and const fns cannot use try_from.
        let mut crc = i as u32;
        let mut bit = 0;
        while bit < 8 {
            crc = if crc & 1 != 0 {
                (crc >> 1) ^ 0xEDB8_8320
            } else {
                crc >> 1
            };
            bit += 1;
        }
        // tdm-lint: allow(T1): `i` is the loop bound of this 256-entry table, and const fns cannot use iterators.
        table[i] = crc;
        i += 1;
    }
    table
}

const CRC32_TABLE: [u32; 256] = crc32_table();

/// CRC-32 (IEEE) of `bytes`, as used for the per-section checksums.
pub fn crc32(bytes: &[u8]) -> u32 {
    let mut crc = 0xFFFF_FFFFu32;
    for &b in bytes {
        // tdm-lint: allow(T1, C1): the index is masked to 8 bits, so both the 256-entry lookup and the usize cast are total.
        crc = (crc >> 8) ^ CRC32_TABLE[((crc ^ u32::from(b)) & 0xFF) as usize];
    }
    !crc
}

// ---------------------------------------------------------------------------
// Container
// ---------------------------------------------------------------------------

/// Reads `N` bytes at `offset`, or `Truncated { context }` when `bytes` is
/// too short. The container decoder's only primitive — bounds-checked, so
/// the decoder stays total.
fn read_le<const N: usize>(
    bytes: &[u8],
    offset: usize,
    context: &'static str,
) -> Result<[u8; N], SnapshotError> {
    let Some(slice) = offset.checked_add(N).and_then(|end| bytes.get(offset..end)) else {
        return Err(SnapshotError::Truncated { context });
    };
    let mut array = [0u8; N];
    for (dst, src) in array.iter_mut().zip(slice) {
        *dst = *src;
    }
    Ok(array)
}

/// Size of the fixed header (magic + version + section count).
const HEADER_LEN: usize = 16;
/// Size of one section-table entry (id + offset + len + crc).
const TABLE_ENTRY_LEN: usize = 24;

/// A decoded (or under-construction) snapshot: an ordered list of
/// `(section id, payload)` pairs plus the serialization to and from the
/// container format described in the module docs.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Snapshot {
    sections: Vec<(u32, Vec<u8>)>,
}

impl Snapshot {
    /// An empty snapshot with no sections.
    pub fn new() -> Self {
        Snapshot::default()
    }

    /// Appends a section.
    ///
    /// # Panics
    ///
    /// Panics if `id` was already added — each section appears at most once.
    pub fn add_section(&mut self, id: u32, payload: Vec<u8>) {
        assert!(
            !self.sections.iter().any(|&(existing, _)| existing == id),
            "duplicate snapshot section {id:#04x}"
        );
        self.sections.push((id, payload));
    }

    /// The payload of section `id`, or [`SnapshotError::MissingSection`].
    pub fn section(&self, id: u32) -> Result<&[u8], SnapshotError> {
        self.sections
            .iter()
            .find(|&&(existing, _)| existing == id)
            .map(|(_, payload)| payload.as_slice())
            .ok_or(SnapshotError::MissingSection { section: id })
    }

    /// Whether section `id` is present.
    pub fn has_section(&self, id: u32) -> bool {
        self.sections.iter().any(|&(existing, _)| existing == id)
    }

    /// The ids of all sections, in file order.
    pub fn section_ids(&self) -> Vec<u32> {
        self.sections.iter().map(|&(id, _)| id).collect()
    }

    /// Serializes the snapshot to the container format.
    pub fn to_bytes(&self) -> Vec<u8> {
        let payload_total: usize = self.sections.iter().map(|(_, p)| p.len()).sum();
        let table_len = self.sections.len() * TABLE_ENTRY_LEN;
        let mut out = Vec::with_capacity(HEADER_LEN + table_len + payload_total);
        out.extend_from_slice(&MAGIC);
        out.extend_from_slice(&FORMAT_VERSION.to_le_bytes());
        // tdm-lint: allow(C1): section ids are unique u32s (add_section asserts), so the count fits; this is the writer, not the untrusted decoder.
        out.extend_from_slice(&(self.sections.len() as u32).to_le_bytes());
        let mut offset = (HEADER_LEN + table_len) as u64;
        for (id, payload) in &self.sections {
            out.extend_from_slice(&id.to_le_bytes());
            out.extend_from_slice(&offset.to_le_bytes());
            out.extend_from_slice(&(payload.len() as u64).to_le_bytes());
            out.extend_from_slice(&crc32(payload).to_le_bytes());
            offset += payload.len() as u64;
        }
        for (_, payload) in &self.sections {
            out.extend_from_slice(payload);
        }
        out
    }

    /// Parses and validates a snapshot from `bytes`: magic, version,
    /// section-table bounds and every per-section CRC. Total: any byte
    /// string maps to `Ok` or a typed [`SnapshotError`], never a panic.
    pub fn from_bytes(bytes: &[u8]) -> Result<Self, SnapshotError> {
        let magic: [u8; 8] = read_le(bytes, 0, "file header")?;
        if magic != MAGIC {
            return Err(SnapshotError::BadMagic { found: magic });
        }
        let version = u32::from_le_bytes(read_le(bytes, 8, "file header")?);
        if version > FORMAT_VERSION {
            return Err(SnapshotError::UnsupportedVersion {
                found: version,
                supported: FORMAT_VERSION,
            });
        }
        let raw_count = u32::from_le_bytes(read_le(bytes, 12, "file header")?);
        let count = usize::try_from(raw_count).map_err(|_| SnapshotError::Truncated {
            context: "section table",
        })?;
        let table_end = count
            .checked_mul(TABLE_ENTRY_LEN)
            .and_then(|t| t.checked_add(HEADER_LEN))
            .filter(|&end| end <= bytes.len());
        if table_end.is_none() {
            return Err(SnapshotError::Truncated {
                context: "section table",
            });
        }
        let mut sections = Vec::with_capacity(count);
        for i in 0..count {
            // In bounds: `i < count` and the whole table fits (checked above).
            let entry = HEADER_LEN + i * TABLE_ENTRY_LEN;
            let id = u32::from_le_bytes(read_le(bytes, entry, "section table")?);
            let offset = u64::from_le_bytes(read_le(bytes, entry + 4, "section table")?);
            let len = u64::from_le_bytes(read_le(bytes, entry + 12, "section table")?);
            let crc = u32::from_le_bytes(read_le(bytes, entry + 20, "section table")?);
            let (Ok(offset), Ok(len)) = (usize::try_from(offset), usize::try_from(len)) else {
                return Err(SnapshotError::Truncated {
                    context: "section payload",
                });
            };
            let Some(payload) = offset
                .checked_add(len)
                .and_then(|end| bytes.get(offset..end))
            else {
                return Err(SnapshotError::Truncated {
                    context: "section payload",
                });
            };
            if crc32(payload) != crc {
                return Err(SnapshotError::CrcMismatch { section: id });
            }
            sections.push((id, payload.to_vec()));
        }
        Ok(Snapshot { sections })
    }

    /// Writes the serialized snapshot to `path`.
    pub fn write_to(&self, path: &std::path::Path) -> Result<(), SnapshotError> {
        std::fs::write(path, self.to_bytes())
            .map_err(|e| SnapshotError::Io(format!("cannot write {}: {e}", path.display())))
    }

    /// Reads and validates a snapshot from `path`.
    pub fn read_from(path: &std::path::Path) -> Result<Self, SnapshotError> {
        let bytes = std::fs::read(path)
            .map_err(|e| SnapshotError::Io(format!("cannot read {}: {e}", path.display())))?;
        Snapshot::from_bytes(&bytes)
    }
}

// ---------------------------------------------------------------------------
// Field codec
// ---------------------------------------------------------------------------

/// A bounds-checked cursor over a section payload.
#[derive(Debug)]
pub struct Reader<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    /// Wraps a section payload.
    pub fn new(bytes: &'a [u8]) -> Self {
        Reader { bytes, pos: 0 }
    }

    /// Bytes not yet consumed.
    pub fn remaining(&self) -> usize {
        self.bytes.len() - self.pos
    }

    /// Consumes exactly `n` bytes.
    pub fn take(&mut self, n: usize) -> Result<&'a [u8], SnapshotError> {
        let Some(slice) = self
            .pos
            .checked_add(n)
            .and_then(|end| self.bytes.get(self.pos..end))
        else {
            return Err(SnapshotError::Truncated {
                context: "section field",
            });
        };
        self.pos += n;
        Ok(slice)
    }

    /// Consumes exactly `N` bytes as a fixed-size array (the `from_le_bytes`
    /// feeder — total by construction, no length `expect` needed).
    pub fn take_array<const N: usize>(&mut self) -> Result<[u8; N], SnapshotError> {
        let slice = self.take(N)?;
        let mut array = [0u8; N];
        for (dst, src) in array.iter_mut().zip(slice) {
            *dst = *src;
        }
        Ok(array)
    }

    /// Asserts the payload was consumed exactly; trailing bytes mean the
    /// writer and reader disagree on the layout.
    pub fn expect_end(&self, what: &str) -> Result<(), SnapshotError> {
        if self.remaining() != 0 {
            return Err(SnapshotError::Corrupt {
                context: format!("{} bytes left over after decoding {what}", self.remaining()),
            });
        }
        Ok(())
    }
}

/// Serialization to and from the snapshot field codec.
///
/// Implementations must be exact: a round trip through `save`/`load`
/// reconstructs the value bit-for-bit, including container *order* for
/// collections whose iteration order the simulation observes (free lists,
/// queues, LRU lists). Types whose in-memory layout includes unobservable
/// state (hash maps, derived indices) serialize a canonical form instead
/// and rebuild the rest on load.
pub trait Persist: Sized {
    /// Appends the encoded value to `out`.
    fn save(&self, out: &mut Vec<u8>);
    /// Decodes one value from `r`.
    fn load(r: &mut Reader<'_>) -> Result<Self, SnapshotError>;
}

macro_rules! persist_int {
    ($($t:ty),*) => {$(
        impl Persist for $t {
            fn save(&self, out: &mut Vec<u8>) {
                out.extend_from_slice(&self.to_le_bytes());
            }
            fn load(r: &mut Reader<'_>) -> Result<Self, SnapshotError> {
                Ok(<$t>::from_le_bytes(r.take_array()?))
            }
        }
    )*};
}

persist_int!(u8, u16, u32, u64, i64);

impl Persist for usize {
    fn save(&self, out: &mut Vec<u8>) {
        (*self as u64).save(out);
    }
    fn load(r: &mut Reader<'_>) -> Result<Self, SnapshotError> {
        let v = u64::load(r)?;
        usize::try_from(v).map_err(|_| SnapshotError::Corrupt {
            context: format!("value {v} does not fit in usize on this host"),
        })
    }
}

impl Persist for bool {
    fn save(&self, out: &mut Vec<u8>) {
        out.push(u8::from(*self));
    }
    fn load(r: &mut Reader<'_>) -> Result<Self, SnapshotError> {
        match u8::load(r)? {
            0 => Ok(false),
            1 => Ok(true),
            other => Err(SnapshotError::Corrupt {
                context: format!("boolean tag {other} (expected 0 or 1)"),
            }),
        }
    }
}

impl Persist for f64 {
    fn save(&self, out: &mut Vec<u8>) {
        self.to_bits().save(out);
    }
    fn load(r: &mut Reader<'_>) -> Result<Self, SnapshotError> {
        Ok(f64::from_bits(u64::load(r)?))
    }
}

impl Persist for String {
    fn save(&self, out: &mut Vec<u8>) {
        (self.len() as u64).save(out);
        out.extend_from_slice(self.as_bytes());
    }
    fn load(r: &mut Reader<'_>) -> Result<Self, SnapshotError> {
        let len = checked_len(r)?;
        let bytes = r.take(len)?;
        String::from_utf8(bytes.to_vec()).map_err(|_| SnapshotError::Corrupt {
            context: "string field is not valid UTF-8".to_string(),
        })
    }
}

impl Persist for Cycle {
    fn save(&self, out: &mut Vec<u8>) {
        self.raw().save(out);
    }
    fn load(r: &mut Reader<'_>) -> Result<Self, SnapshotError> {
        Ok(Cycle::new(u64::load(r)?))
    }
}

impl<T: Persist> Persist for Option<T> {
    fn save(&self, out: &mut Vec<u8>) {
        match self {
            None => out.push(0),
            Some(v) => {
                out.push(1);
                v.save(out);
            }
        }
    }
    fn load(r: &mut Reader<'_>) -> Result<Self, SnapshotError> {
        match u8::load(r)? {
            0 => Ok(None),
            1 => Ok(Some(T::load(r)?)),
            other => Err(SnapshotError::Corrupt {
                context: format!("option tag {other} (expected 0 or 1)"),
            }),
        }
    }
}

/// Reads a `u64` length prefix and sanity-checks it against the bytes
/// actually remaining (every element occupies at least one byte), so a
/// corrupt length cannot trigger an enormous allocation.
fn checked_len(r: &mut Reader<'_>) -> Result<usize, SnapshotError> {
    let raw = u64::load(r)?;
    usize::try_from(raw)
        .ok()
        .filter(|&len| len <= r.remaining())
        .ok_or(SnapshotError::Truncated {
            context: "length-prefixed sequence",
        })
}

impl<T: Persist> Persist for Vec<T> {
    fn save(&self, out: &mut Vec<u8>) {
        (self.len() as u64).save(out);
        for item in self {
            item.save(out);
        }
    }
    fn load(r: &mut Reader<'_>) -> Result<Self, SnapshotError> {
        let len = checked_len(r)?;
        let mut items = Vec::with_capacity(len);
        for _ in 0..len {
            items.push(T::load(r)?);
        }
        Ok(items)
    }
}

impl<T: Persist> Persist for VecDeque<T> {
    fn save(&self, out: &mut Vec<u8>) {
        (self.len() as u64).save(out);
        for item in self {
            item.save(out);
        }
    }
    fn load(r: &mut Reader<'_>) -> Result<Self, SnapshotError> {
        let len = checked_len(r)?;
        let mut items = VecDeque::with_capacity(len);
        for _ in 0..len {
            items.push_back(T::load(r)?);
        }
        Ok(items)
    }
}

impl<A: Persist, B: Persist> Persist for (A, B) {
    fn save(&self, out: &mut Vec<u8>) {
        self.0.save(out);
        self.1.save(out);
    }
    fn load(r: &mut Reader<'_>) -> Result<Self, SnapshotError> {
        Ok((A::load(r)?, B::load(r)?))
    }
}

impl<A: Persist, B: Persist, C: Persist> Persist for (A, B, C) {
    fn save(&self, out: &mut Vec<u8>) {
        self.0.save(out);
        self.1.save(out);
        self.2.save(out);
    }
    fn load(r: &mut Reader<'_>) -> Result<Self, SnapshotError> {
        Ok((A::load(r)?, B::load(r)?, C::load(r)?))
    }
}

/// Convenience: encodes one [`Persist`] value as a standalone payload.
pub fn to_payload<T: Persist>(value: &T) -> Vec<u8> {
    let mut out = Vec::new();
    value.save(&mut out);
    out
}

/// Convenience: decodes one [`Persist`] value from a whole payload,
/// requiring the payload to be fully consumed.
pub fn from_payload<T: Persist>(payload: &[u8], what: &str) -> Result<T, SnapshotError> {
    let mut r = Reader::new(payload);
    let value = T::load(&mut r)?;
    r.expect_end(what)?;
    Ok(value)
}

// Persist impls for sim types with private fields live next to those types
// (`rng::SplitMix64`, `cache::LocalityModel`, `event::wheel::TimingWheel`);
// `stats::SimStats` is fully public, so its impl lives here.

impl Persist for crate::stats::CoreBreakdown {
    fn save(&self, out: &mut Vec<u8>) {
        for phase in crate::stats::Phase::ALL {
            self.get(phase).save(out);
        }
    }
    fn load(r: &mut Reader<'_>) -> Result<Self, SnapshotError> {
        let mut breakdown = crate::stats::CoreBreakdown::default();
        for phase in crate::stats::Phase::ALL {
            breakdown.add(phase, Cycle::load(r)?);
        }
        Ok(breakdown)
    }
}

impl Persist for crate::stats::SimStats {
    fn save(&self, out: &mut Vec<u8>) {
        self.makespan.save(out);
        self.cores.save(out);
        self.master.save(out);
        self.tasks_executed.save(out);
        self.dmu_stall_cycles.save(out);
        self.dmu_instructions.save(out);
    }
    fn load(r: &mut Reader<'_>) -> Result<Self, SnapshotError> {
        let makespan = Cycle::load(r)?;
        let cores = Vec::load(r)?;
        let master = usize::load(r)?;
        let mut stats = crate::stats::SimStats::new(cores.len(), master);
        stats.makespan = makespan;
        stats.cores = cores;
        stats.tasks_executed = u64::load(r)?;
        stats.dmu_stall_cycles = Cycle::load(r)?;
        stats.dmu_instructions = u64::load(r)?;
        Ok(stats)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn crc32_matches_known_vectors() {
        // The standard IEEE check value for "123456789".
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
    }

    #[test]
    fn primitives_round_trip() {
        let mut out = Vec::new();
        0xAAu8.save(&mut out);
        0xBEEFu16.save(&mut out);
        0xDEAD_BEEFu32.save(&mut out);
        0x0123_4567_89AB_CDEFu64.save(&mut out);
        (-42i64).save(&mut out);
        usize::MAX.save(&mut out);
        true.save(&mut out);
        1.5f64.save(&mut out);
        "héllo".to_string().save(&mut out);
        Cycle::new(77).save(&mut out);
        Some(3u32).save(&mut out);
        Option::<u32>::None.save(&mut out);
        vec![1u64, 2, 3].save(&mut out);
        VecDeque::from([9u32, 8]).save(&mut out);
        (1u8, 2u16, 3u32).save(&mut out);

        let mut r = Reader::new(&out);
        assert_eq!(u8::load(&mut r).unwrap(), 0xAA);
        assert_eq!(u16::load(&mut r).unwrap(), 0xBEEF);
        assert_eq!(u32::load(&mut r).unwrap(), 0xDEAD_BEEF);
        assert_eq!(u64::load(&mut r).unwrap(), 0x0123_4567_89AB_CDEF);
        assert_eq!(i64::load(&mut r).unwrap(), -42);
        assert_eq!(usize::load(&mut r).unwrap(), usize::MAX);
        assert!(bool::load(&mut r).unwrap());
        assert_eq!(f64::load(&mut r).unwrap(), 1.5);
        assert_eq!(String::load(&mut r).unwrap(), "héllo");
        assert_eq!(Cycle::load(&mut r).unwrap(), Cycle::new(77));
        assert_eq!(Option::<u32>::load(&mut r).unwrap(), Some(3));
        assert_eq!(Option::<u32>::load(&mut r).unwrap(), None);
        assert_eq!(Vec::<u64>::load(&mut r).unwrap(), vec![1, 2, 3]);
        assert_eq!(
            VecDeque::<u32>::load(&mut r).unwrap(),
            VecDeque::from([9, 8])
        );
        assert_eq!(<(u8, u16, u32)>::load(&mut r).unwrap(), (1, 2, 3));
        r.expect_end("primitives").unwrap();
    }

    #[test]
    fn container_round_trips_multiple_sections() {
        let mut snap = Snapshot::new();
        snap.add_section(section::META, b"meta-bytes".to_vec());
        snap.add_section(section::ENGINE, vec![0u8; 1000]);
        snap.add_section(section::FEED, Vec::new());
        let bytes = snap.to_bytes();
        let back = Snapshot::from_bytes(&bytes).unwrap();
        assert_eq!(back, snap);
        assert_eq!(
            back.section_ids(),
            vec![section::META, section::ENGINE, section::FEED]
        );
        assert_eq!(back.section(section::META).unwrap(), b"meta-bytes");
        assert_eq!(back.section(section::FEED).unwrap(), b"");
    }

    #[test]
    fn bad_magic_is_rejected_with_the_found_bytes() {
        let err = Snapshot::from_bytes(b"NOTASNAPxxxxxxxx").unwrap_err();
        assert!(matches!(err, SnapshotError::BadMagic { .. }));
        assert!(err.to_string().contains("TDMSNAP"));
    }

    #[test]
    fn future_version_is_rejected_cleanly() {
        let mut bytes = Snapshot::new().to_bytes();
        bytes[8..12].copy_from_slice(&(FORMAT_VERSION + 5).to_le_bytes());
        let err = Snapshot::from_bytes(&bytes).unwrap_err();
        assert_eq!(
            err,
            SnapshotError::UnsupportedVersion {
                found: FORMAT_VERSION + 5,
                supported: FORMAT_VERSION,
            }
        );
        assert!(err.to_string().contains("newer"));
    }

    #[test]
    fn truncation_at_every_length_is_an_error_never_a_panic() {
        let mut snap = Snapshot::new();
        snap.add_section(section::DRIVER, to_payload(&vec![1u64, 2, 3]));
        snap.add_section(section::STATS, b"xyz".to_vec());
        let bytes = snap.to_bytes();
        for len in 0..bytes.len() {
            let err = Snapshot::from_bytes(&bytes[..len]);
            assert!(err.is_err(), "prefix of {len} bytes must not parse");
        }
        assert!(Snapshot::from_bytes(&bytes).is_ok());
    }

    #[test]
    fn flipping_any_payload_byte_fails_the_crc() {
        let mut snap = Snapshot::new();
        snap.add_section(section::EVENTS, (0..64u8).collect());
        let clean = snap.to_bytes();
        let payload_start = clean.len() - 64;
        for i in payload_start..clean.len() {
            let mut dirty = clean.clone();
            dirty[i] ^= 0x40;
            let err = Snapshot::from_bytes(&dirty).unwrap_err();
            assert_eq!(
                err,
                SnapshotError::CrcMismatch {
                    section: section::EVENTS
                },
                "flipping byte {i} must be caught"
            );
        }
    }

    #[test]
    fn missing_section_error_names_the_section() {
        let snap = Snapshot::new();
        let err = snap.section(section::ENGINE).unwrap_err();
        assert_eq!(
            err,
            SnapshotError::MissingSection {
                section: section::ENGINE
            }
        );
        assert!(err.to_string().contains("ENGINE"));
    }

    #[test]
    #[should_panic(expected = "duplicate snapshot section")]
    fn duplicate_sections_are_rejected_at_build_time() {
        let mut snap = Snapshot::new();
        snap.add_section(section::META, Vec::new());
        snap.add_section(section::META, Vec::new());
    }

    #[test]
    fn take_array_on_short_input_is_truncated_not_a_panic() {
        let mut r = Reader::new(&[1, 2, 3]);
        let err = r.take_array::<8>().unwrap_err();
        assert!(matches!(err, SnapshotError::Truncated { .. }));
        // The reader did not advance past the failed read.
        assert_eq!(r.take_array::<2>().unwrap(), [1, 2]);
    }

    #[test]
    fn section_table_offset_overflow_is_truncated_not_a_panic() {
        // One table entry whose offset + len wraps u64/usize arithmetic:
        // the bounds check must use checked math, not panic or wrap.
        let mut snap = Snapshot::new();
        snap.add_section(section::DRIVER, vec![0xAB; 4]);
        let mut bytes = snap.to_bytes();
        // Entry layout after the 16-byte header: id(4) offset(8) len(8) crc(4).
        bytes[20..28].copy_from_slice(&u64::MAX.to_le_bytes());
        bytes[28..36].copy_from_slice(&8u64.to_le_bytes());
        let err = Snapshot::from_bytes(&bytes).unwrap_err();
        assert!(matches!(err, SnapshotError::Truncated { .. }));
    }

    #[test]
    fn huge_section_count_is_truncated_not_an_allocation() {
        // count * TABLE_ENTRY_LEN is attacker-controlled; a count claiming
        // billions of sections in a 16-byte file must fail the table bound.
        let mut bytes = Snapshot::new().to_bytes();
        bytes[12..16].copy_from_slice(&u32::MAX.to_le_bytes());
        let err = Snapshot::from_bytes(&bytes).unwrap_err();
        assert!(matches!(err, SnapshotError::Truncated { .. }));
    }

    #[test]
    fn section_payload_past_end_is_truncated() {
        let mut snap = Snapshot::new();
        snap.add_section(section::DRIVER, vec![7; 16]);
        let mut bytes = snap.to_bytes();
        // Point the payload just past the end of the file (no overflow).
        let offset = bytes.len() as u64 - 8;
        bytes[20..28].copy_from_slice(&offset.to_le_bytes());
        let err = Snapshot::from_bytes(&bytes).unwrap_err();
        assert!(matches!(err, SnapshotError::Truncated { .. }));
    }

    #[test]
    fn oversized_length_prefix_is_rejected_without_allocating() {
        let mut payload = Vec::new();
        u64::MAX.save(&mut payload);
        let err = from_payload::<Vec<u64>>(&payload, "test vec").unwrap_err();
        assert!(matches!(err, SnapshotError::Truncated { .. }));
    }

    #[test]
    fn trailing_bytes_are_reported() {
        let mut payload = Vec::new();
        7u64.save(&mut payload);
        payload.push(0xFF);
        let err = from_payload::<u64>(&payload, "driver scalars").unwrap_err();
        assert!(err.to_string().contains("driver scalars"));
    }

    #[test]
    fn registry_ids_are_unique_and_named() {
        for (i, a) in SECTIONS.iter().enumerate() {
            assert!(!a.name.is_empty());
            assert!(!a.summary.is_empty());
            for b in &SECTIONS[i + 1..] {
                assert_ne!(a.id, b.id, "section ids must be unique");
                assert_ne!(a.name, b.name, "section names must be unique");
            }
        }
        assert_eq!(section_info(section::META).unwrap().name, "META");
        assert!(section_info(0xFFFF).is_none());
    }

    #[test]
    fn sim_stats_round_trip() {
        let mut stats = crate::stats::SimStats::new(3, 0);
        stats.makespan = Cycle::new(1234);
        stats.tasks_executed = 99;
        stats.dmu_stall_cycles = Cycle::new(5);
        stats.dmu_instructions = 400;
        stats.cores[1].add(crate::stats::Phase::Exec, Cycle::new(800));
        stats.cores[2].add(crate::stats::Phase::Idle, Cycle::new(30));
        let back: crate::stats::SimStats = from_payload(&to_payload(&stats), "stats").unwrap();
        assert_eq!(back.makespan, stats.makespan);
        assert_eq!(back.tasks_executed, stats.tasks_executed);
        assert_eq!(back.dmu_stall_cycles, stats.dmu_stall_cycles);
        assert_eq!(back.dmu_instructions, stats.dmu_instructions);
        assert_eq!(back.cores.len(), 3);
        for core in 0..3 {
            for phase in crate::stats::Phase::ALL {
                assert_eq!(back.cores[core].get(phase), stats.cores[core].get(phase));
            }
        }
    }
}
