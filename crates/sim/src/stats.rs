//! Per-core phase accounting and whole-simulation statistics.
//!
//! Figure 2 of the paper breaks the execution of every thread into four
//! phases: dependence-management operations during task creation and
//! finalization (**DEPS**), scheduling (**SCHED**), task execution (**EXEC**)
//! and idle time (**IDLE**). The same breakdown drives Figures 10, 12 and 13.
//! [`CoreBreakdown`] accumulates cycles per phase for one core and
//! [`SimStats`] aggregates the whole chip.

use std::fmt;
use std::ops::{Index, IndexMut};

use serde::{Deserialize, Serialize};

use crate::clock::Cycle;

/// The execution phases distinguished by the paper's characterization
/// (Section II-B, Figure 2).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Phase {
    /// Dependence management during task creation and task finalization.
    Deps,
    /// Task scheduling: selecting a ready task and pool maintenance.
    Sched,
    /// Executing the body of a task.
    Exec,
    /// Waiting: the ready pool is empty, or the thread sits at a barrier /
    /// in a sequential region.
    Idle,
}

impl Phase {
    /// All phases, in the order the paper plots them.
    pub const ALL: [Phase; 4] = [Phase::Deps, Phase::Sched, Phase::Exec, Phase::Idle];

    /// Short upper-case label used in reports (`DEPS`, `SCHED`, ...).
    pub fn label(self) -> &'static str {
        match self {
            Phase::Deps => "DEPS",
            Phase::Sched => "SCHED",
            Phase::Exec => "EXEC",
            Phase::Idle => "IDLE",
        }
    }
}

impl fmt::Display for Phase {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.label())
    }
}

/// Cycles accumulated in each phase by a single core.
///
/// # Example
///
/// ```
/// use tdm_sim::clock::Cycle;
/// use tdm_sim::stats::{CoreBreakdown, Phase};
///
/// let mut b = CoreBreakdown::new();
/// b.add(Phase::Exec, Cycle::new(900));
/// b.add(Phase::Idle, Cycle::new(100));
/// assert_eq!(b.total(), Cycle::new(1000));
/// assert!((b.fraction(Phase::Exec) - 0.9).abs() < 1e-12);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct CoreBreakdown {
    deps: Cycle,
    sched: Cycle,
    exec: Cycle,
    idle: Cycle,
}

impl CoreBreakdown {
    /// Creates an all-zero breakdown.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds `cycles` to `phase`.
    pub fn add(&mut self, phase: Phase, cycles: Cycle) {
        self[phase] += cycles;
    }

    /// Cycles spent in `phase`.
    pub fn get(&self, phase: Phase) -> Cycle {
        self[phase]
    }

    /// Total cycles across all phases.
    pub fn total(&self) -> Cycle {
        self.deps + self.sched + self.exec + self.idle
    }

    /// Fraction of the total time spent in `phase` (0.0 if the breakdown is
    /// empty).
    pub fn fraction(&self, phase: Phase) -> f64 {
        let total = self.total();
        if total.is_zero() {
            0.0
        } else {
            self[phase].as_f64() / total.as_f64()
        }
    }

    /// Component-wise sum of two breakdowns.
    pub fn merged(&self, other: &CoreBreakdown) -> CoreBreakdown {
        CoreBreakdown {
            deps: self.deps + other.deps,
            sched: self.sched + other.sched,
            exec: self.exec + other.exec,
            idle: self.idle + other.idle,
        }
    }

    /// Pads the breakdown with idle time so the total reaches `target`.
    ///
    /// The execution driver uses this at the end of a simulation so every
    /// core's breakdown covers the full makespan (cores that ran out of work
    /// before the end of the program were idle for the remainder).
    pub fn pad_idle_to(&mut self, target: Cycle) {
        let total = self.total();
        if target > total {
            self.idle += target - total;
        }
    }
}

impl Index<Phase> for CoreBreakdown {
    type Output = Cycle;

    fn index(&self, phase: Phase) -> &Cycle {
        match phase {
            Phase::Deps => &self.deps,
            Phase::Sched => &self.sched,
            Phase::Exec => &self.exec,
            Phase::Idle => &self.idle,
        }
    }
}

impl IndexMut<Phase> for CoreBreakdown {
    fn index_mut(&mut self, phase: Phase) -> &mut Cycle {
        match phase {
            Phase::Deps => &mut self.deps,
            Phase::Sched => &mut self.sched,
            Phase::Exec => &mut self.exec,
            Phase::Idle => &mut self.idle,
        }
    }
}

/// Statistics for a complete simulated execution.
///
/// `master` is the core that creates tasks (core 0 in this reproduction, core
/// 1 in the paper's Figure 1 timeline — the choice is immaterial); `workers`
/// are the remaining cores.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SimStats {
    /// Total execution time of the parallel region (makespan) in cycles.
    pub makespan: Cycle,
    /// Per-core phase breakdowns, indexed by core id.
    pub cores: Vec<CoreBreakdown>,
    /// Index of the master core in `cores`.
    pub master: usize,
    /// Number of tasks executed.
    pub tasks_executed: u64,
    /// Number of cycles the master (or any creator) was stalled because a DMU
    /// structure was full. Zero for pure-software runs.
    pub dmu_stall_cycles: Cycle,
    /// Number of TDM ISA instructions issued (zero for pure-software runs).
    pub dmu_instructions: u64,
}

impl SimStats {
    /// Creates empty statistics for `num_cores` cores with `master` as the
    /// task-creating core.
    ///
    /// # Panics
    ///
    /// Panics if `master >= num_cores`.
    pub fn new(num_cores: usize, master: usize) -> Self {
        assert!(
            master < num_cores,
            "master core {master} out of range ({num_cores} cores)"
        );
        SimStats {
            makespan: Cycle::ZERO,
            cores: vec![CoreBreakdown::new(); num_cores],
            master,
            tasks_executed: 0,
            dmu_stall_cycles: Cycle::ZERO,
            dmu_instructions: 0,
        }
    }

    /// Number of simulated cores.
    pub fn num_cores(&self) -> usize {
        self.cores.len()
    }

    /// The master core's breakdown.
    pub fn master_breakdown(&self) -> &CoreBreakdown {
        &self.cores[self.master]
    }

    /// Aggregate breakdown of every worker (non-master) core.
    pub fn worker_breakdown(&self) -> CoreBreakdown {
        self.cores
            .iter()
            .enumerate()
            .filter(|(i, _)| *i != self.master)
            .fold(CoreBreakdown::new(), |acc, (_, b)| acc.merged(b))
    }

    /// Aggregate breakdown over all cores.
    pub fn chip_breakdown(&self) -> CoreBreakdown {
        self.cores
            .iter()
            .fold(CoreBreakdown::new(), |acc, b| acc.merged(b))
    }

    /// Fraction of total CPU time (all cores) spent in `phase`.
    pub fn chip_fraction(&self, phase: Phase) -> f64 {
        self.chip_breakdown().fraction(phase)
    }

    /// Pads every core's breakdown with idle time up to the makespan so the
    /// per-core totals are comparable.
    pub fn normalize_to_makespan(&mut self) {
        let makespan = self.makespan;
        for core in &mut self.cores {
            core.pad_idle_to(makespan);
        }
    }

    /// Speedup of this run relative to `baseline` (baseline makespan divided
    /// by this makespan).
    ///
    /// # Panics
    ///
    /// Panics if this run's makespan is zero.
    pub fn speedup_over(&self, baseline: &SimStats) -> f64 {
        assert!(
            !self.makespan.is_zero(),
            "cannot compute speedup of an empty run"
        );
        baseline.makespan.as_f64() / self.makespan.as_f64()
    }
}

/// Geometric mean of a slice of strictly positive values.
///
/// The paper reports averages of speedups and normalized EDP as geometric
/// means; this helper is shared by the figure harnesses.
///
/// # Panics
///
/// Panics if `values` is empty or contains a non-positive value.
pub fn geometric_mean(values: &[f64]) -> f64 {
    assert!(!values.is_empty(), "geometric mean of an empty slice");
    let log_sum: f64 = values
        .iter()
        .map(|&v| {
            assert!(v > 0.0, "geometric mean requires positive values, got {v}");
            v.ln()
        })
        .sum();
    (log_sum / values.len() as f64).exp()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn breakdown_accumulates_and_totals() {
        let mut b = CoreBreakdown::new();
        b.add(Phase::Deps, Cycle::new(10));
        b.add(Phase::Sched, Cycle::new(20));
        b.add(Phase::Exec, Cycle::new(60));
        b.add(Phase::Idle, Cycle::new(10));
        assert_eq!(b.total(), Cycle::new(100));
        assert!((b.fraction(Phase::Exec) - 0.6).abs() < 1e-12);
        assert_eq!(b.get(Phase::Deps), Cycle::new(10));
    }

    #[test]
    fn empty_breakdown_fraction_is_zero() {
        let b = CoreBreakdown::new();
        for phase in Phase::ALL {
            assert_eq!(b.fraction(phase), 0.0);
        }
    }

    #[test]
    fn merged_is_componentwise_sum() {
        let mut a = CoreBreakdown::new();
        a.add(Phase::Exec, Cycle::new(5));
        let mut b = CoreBreakdown::new();
        b.add(Phase::Exec, Cycle::new(7));
        b.add(Phase::Idle, Cycle::new(3));
        let m = a.merged(&b);
        assert_eq!(m.get(Phase::Exec), Cycle::new(12));
        assert_eq!(m.get(Phase::Idle), Cycle::new(3));
    }

    #[test]
    fn pad_idle_extends_to_target() {
        let mut b = CoreBreakdown::new();
        b.add(Phase::Exec, Cycle::new(40));
        b.pad_idle_to(Cycle::new(100));
        assert_eq!(b.get(Phase::Idle), Cycle::new(60));
        assert_eq!(b.total(), Cycle::new(100));
        // Padding to a smaller target is a no-op.
        b.pad_idle_to(Cycle::new(50));
        assert_eq!(b.total(), Cycle::new(100));
    }

    #[test]
    fn phase_labels_match_paper() {
        let labels: Vec<_> = Phase::ALL.iter().map(|p| p.label()).collect();
        assert_eq!(labels, vec!["DEPS", "SCHED", "EXEC", "IDLE"]);
        assert_eq!(Phase::Sched.to_string(), "SCHED");
    }

    #[test]
    fn stats_master_and_worker_split() {
        let mut stats = SimStats::new(4, 0);
        stats.cores[0].add(Phase::Deps, Cycle::new(100));
        stats.cores[1].add(Phase::Exec, Cycle::new(50));
        stats.cores[2].add(Phase::Exec, Cycle::new(50));
        stats.cores[3].add(Phase::Idle, Cycle::new(50));
        assert_eq!(stats.master_breakdown().get(Phase::Deps), Cycle::new(100));
        let workers = stats.worker_breakdown();
        assert_eq!(workers.get(Phase::Exec), Cycle::new(100));
        assert_eq!(workers.get(Phase::Idle), Cycle::new(50));
        assert_eq!(stats.chip_breakdown().total(), Cycle::new(250));
    }

    #[test]
    fn normalize_pads_all_cores() {
        let mut stats = SimStats::new(2, 0);
        stats.makespan = Cycle::new(100);
        stats.cores[0].add(Phase::Exec, Cycle::new(100));
        stats.cores[1].add(Phase::Exec, Cycle::new(30));
        stats.normalize_to_makespan();
        assert_eq!(stats.cores[1].total(), Cycle::new(100));
        assert_eq!(stats.cores[1].get(Phase::Idle), Cycle::new(70));
    }

    #[test]
    fn speedup_is_ratio_of_makespans() {
        let mut fast = SimStats::new(1, 0);
        fast.makespan = Cycle::new(500);
        let mut slow = SimStats::new(1, 0);
        slow.makespan = Cycle::new(1000);
        assert!((fast.speedup_over(&slow) - 2.0).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "master core")]
    fn stats_rejects_out_of_range_master() {
        let _ = SimStats::new(2, 2);
    }

    #[test]
    fn geometric_mean_basics() {
        assert!((geometric_mean(&[1.0, 1.0, 1.0]) - 1.0).abs() < 1e-12);
        assert!((geometric_mean(&[2.0, 8.0]) - 4.0).abs() < 1e-12);
        let values = [1.1, 0.9, 1.3];
        let g = geometric_mean(&values);
        assert!(g > 0.9 && g < 1.3);
    }

    #[test]
    #[should_panic(expected = "empty")]
    fn geometric_mean_rejects_empty() {
        let _ = geometric_mean(&[]);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn geometric_mean_rejects_non_positive() {
        let _ = geometric_mean(&[1.0, 0.0]);
    }
}
