//! Blackscholes (PARSECSs): option pricing over independent chains.
//!
//! The PARSECSs taskification processes batches of options; Section VI
//! describes the resulting structure as independent chains of dependent
//! tasks, which is what makes LIFO scheduling lose 29 % (a subset of chains
//! races ahead, leaving a load-imbalanced tail). Blackscholes is one of the
//! two benchmarks whose optimal granularity differs between the software
//! runtime (3,300 tasks of ≈1,770 µs) and TDM (6,500 tasks of ≈823 µs).

use tdm_runtime::task::{DependenceSpec, TaskSpec, Workload};

use crate::spec::micros;
use crate::stream::TaskStream;

/// Number of independent option-batch chains.
pub const CHAINS: usize = 50;
/// Chain length at the software-optimal granularity (4 KB option blocks).
pub const SOFTWARE_CHAIN_LEN: usize = 66;
/// Chain length at the TDM-optimal granularity (2 KB option blocks).
pub const TDM_CHAIN_LEN: usize = 130;

/// Generation parameters.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Params {
    /// Number of independent chains.
    pub chains: usize,
    /// Tasks per chain.
    pub chain_len: usize,
    /// Duration of each task in microseconds.
    pub task_us: f64,
    /// Size of the option block each chain iterates over, in bytes.
    pub block_bytes: u64,
}

impl Params {
    /// Software-optimal granularity (Table II).
    pub fn software() -> Self {
        Params {
            chains: CHAINS,
            chain_len: SOFTWARE_CHAIN_LEN,
            task_us: 1_770.0,
            block_bytes: 4 * 1024,
        }
    }

    /// TDM-optimal granularity (Table II).
    pub fn tdm() -> Self {
        Params {
            chains: CHAINS,
            chain_len: TDM_CHAIN_LEN,
            task_us: 823.0,
            block_bytes: 2 * 1024,
        }
    }

    /// Granularity sweep point for Figure 6: block size in bytes. The chain
    /// length scales inversely with the block size (same total options), and
    /// the task duration proportionally.
    pub fn with_block_bytes(block_bytes: u64) -> Self {
        let sw = Params::software();
        let ratio = block_bytes as f64 / sw.block_bytes as f64;
        Params {
            chains: CHAINS,
            chain_len: ((sw.chain_len as f64 / ratio).round() as usize).max(1),
            task_us: sw.task_us * ratio,
            block_bytes,
        }
    }
}

/// Lazily generates the Blackscholes workload: `chains` chains, each a
/// sequence of tasks with an `inout` dependence on the chain's option block.
pub fn stream(params: Params) -> TaskStream {
    let duration = micros(params.task_us);
    let block_bytes = params.block_bytes;
    let chains = params.chains;
    // Tasks are created round-robin across chains (chain 0 step 0, chain 1
    // step 0, ..., chain 0 step 1, ...), matching a loop over option batches
    // with an outer iteration loop.
    let iter = (0..params.chain_len).flat_map(move |_step| {
        (0..chains).map(move |chain| {
            // Option batches are consecutive blocks of one large array, so
            // their addresses differ only above the log2(block size) bit —
            // the pattern the DAT's dynamic index-bit selection targets.
            let block = 0x4000_0000_0000 + chain as u64 * block_bytes;
            TaskSpec::new(
                "bs_batch",
                duration,
                vec![DependenceSpec::inout(block, block_bytes)],
            )
        })
    });
    TaskStream::new("blackscholes", params.chains * params.chain_len, iter)
}

/// A scaled-up Blackscholes stream with at least `target_tasks` tasks:
/// longer chains at the TDM-optimal granularity (more option-batch
/// iterations over the same [`CHAINS`] blocks).
pub fn stream_scaled(target_tasks: usize) -> TaskStream {
    let mut params = Params::tdm();
    params.chain_len = target_tasks.div_ceil(params.chains).max(1);
    stream(params)
}

/// Generates the Blackscholes workload (the eager `collect()` of
/// [`stream`]).
pub fn generate(params: Params) -> Workload {
    stream(params).into_workload()
}

/// Software-optimal workload: 3,300 tasks of ≈1,770 µs.
pub fn software_optimal() -> Workload {
    generate(Params::software())
}

/// TDM-optimal workload: 6,500 tasks of ≈823 µs.
pub fn tdm_optimal() -> Workload {
    generate(Params::tdm())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::{check_calibration, Benchmark};
    use tdm_runtime::task::TaskRef;
    use tdm_runtime::tdg::TaskGraph;

    #[test]
    fn software_point_matches_table2() {
        let w = software_optimal();
        assert_eq!(w.len(), 3_300);
        check_calibration(&w, Benchmark::Blackscholes.table2_software(), 0.01, 0.01).unwrap();
    }

    #[test]
    fn tdm_point_matches_table2() {
        let w = tdm_optimal();
        assert_eq!(w.len(), 6_500);
        check_calibration(&w, Benchmark::Blackscholes.table2_tdm(), 0.01, 0.01).unwrap();
    }

    #[test]
    fn chains_are_independent_and_serial() {
        let params = Params {
            chains: 4,
            chain_len: 5,
            task_us: 100.0,
            block_bytes: 1024,
        };
        let w = generate(params);
        let graph = TaskGraph::build(&w);
        // Exactly `chains` roots (the first task of each chain).
        assert_eq!(graph.roots().len(), 4);
        // The critical path is the chain length.
        assert_eq!(graph.critical_path_len(), 5);
        // Total edges: (len-1) per chain.
        assert_eq!(graph.edge_count(), 4 * 4);
    }

    #[test]
    fn round_robin_creation_order() {
        let params = Params {
            chains: 3,
            chain_len: 2,
            task_us: 10.0,
            block_bytes: 512,
        };
        let w = generate(params);
        let graph = TaskGraph::build(&w);
        // Task 3 (chain 0, step 1) depends on task 0 (chain 0, step 0).
        assert_eq!(graph.predecessors(TaskRef(3)), &[TaskRef(0)]);
    }

    #[test]
    fn granularity_sweep_preserves_total_work() {
        let a = generate(Params::with_block_bytes(1024));
        let b = generate(Params::with_block_bytes(8192));
        let ratio = a.total_work().as_f64() / b.total_work().as_f64();
        assert!((0.8..1.25).contains(&ratio), "work ratio {ratio}");
        assert!(a.len() > b.len());
    }
}
