//! Tiled Cholesky factorization (Figure 1 of the paper).
//!
//! The task structure follows the paper's annotated source verbatim: for each
//! panel `j`, a wave of `sgemm` updates, a row of `ssyrk` updates into the
//! diagonal block, the `spotrf` factorization of the diagonal block and a
//! column of `strsm` solves. With the evaluated input (a dense 2048×2048
//! matrix tiled into 32×32 blocks of 64×64 elements) this produces exactly
//! the 5,984 tasks of Table II.

use tdm_runtime::task::{DependenceSpec, TaskSpec, Workload};

use crate::dense::{scale_duration, BlockMatrix};
use crate::spec::micros;
use crate::stream::TaskStream;

/// Matrix dimension evaluated in the paper.
pub const MATRIX_DIM: usize = 2048;
/// Blocks per dimension at the optimal granularity (64×64-element tiles).
pub const OPTIMAL_BLOCKS: usize = 32;

/// Per-kernel durations (µs) calibrated at [`OPTIMAL_BLOCKS`] so the average
/// task duration matches Table II's 183 µs.
const GEMM_US: f64 = 190.0;
const SYRK_US: f64 = 150.0;
const TRSM_US: f64 = 160.0;
const POTRF_US: f64 = 130.0;

/// Generation parameters.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Params {
    /// Blocks per dimension (the granularity knob swept in Figure 6: more
    /// blocks = smaller tasks).
    pub blocks: usize,
}

impl Default for Params {
    fn default() -> Self {
        Params {
            blocks: OPTIMAL_BLOCKS,
        }
    }
}

/// Number of tasks generated for a given block count (closed form, used by
/// tests and the granularity sweep).
pub fn task_count(blocks: usize) -> usize {
    let n = blocks;
    // spotrf: n, strsm: n(n-1)/2, ssyrk: n(n-1)/2, sgemm: n(n-1)(n-2)/6.
    n + n * (n - 1) / 2 + n * (n - 1) / 2 + n * (n - 1) * (n - 2) / 6
}

/// Per-kernel durations in cycles for a given granularity.
#[derive(Debug, Clone, Copy)]
struct Durations {
    gemm: tdm_sim::clock::Cycle,
    syrk: tdm_sim::clock::Cycle,
    trsm: tdm_sim::clock::Cycle,
    potrf: tdm_sim::clock::Cycle,
}

/// Lazily generates the tile-Cholesky task sequence over `matrix`.
///
/// Standard right-looking tile Cholesky: factorize the panel, solve the
/// column below it, then update the trailing submatrix. The kernel counts
/// are identical to the paper's listing (Figure 1); the right-looking order
/// is the one production runtimes execute and keeps the trailing updates of
/// one panel independent of each other.
fn stream_over(matrix: BlockMatrix, d: Durations) -> TaskStream {
    let blocks = matrix.blocks;
    let bytes = matrix.block_bytes();
    let iter = (0..blocks).flat_map(move |k| {
        let panel = std::iter::once(TaskSpec::new(
            "spotrf",
            d.potrf,
            vec![DependenceSpec::inout(matrix.block(k, k), bytes)],
        ));
        let solves = ((k + 1)..blocks).map(move |i| {
            TaskSpec::new(
                "strsm",
                d.trsm,
                vec![
                    DependenceSpec::input(matrix.block(k, k), bytes),
                    DependenceSpec::inout(matrix.block(i, k), bytes),
                ],
            )
        });
        let updates = ((k + 1)..blocks).flat_map(move |i| {
            std::iter::once(TaskSpec::new(
                "ssyrk",
                d.syrk,
                vec![
                    DependenceSpec::input(matrix.block(i, k), bytes),
                    DependenceSpec::inout(matrix.block(i, i), bytes),
                ],
            ))
            .chain(((k + 1)..i).map(move |j| {
                TaskSpec::new(
                    "sgemm",
                    d.gemm,
                    vec![
                        DependenceSpec::input(matrix.block(i, k), bytes),
                        DependenceSpec::input(matrix.block(j, k), bytes),
                        DependenceSpec::inout(matrix.block(i, j), bytes),
                    ],
                )
            }))
        });
        panel.chain(solves).chain(updates)
    });
    // Cholesky is memory intensive and benefits from locality-aware
    // scheduling (Section VI-A reports Local+TDM ≈ 4% over FIFO+TDM).
    TaskStream::new("cholesky", task_count(blocks), iter).with_locality_benefit(0.06)
}

/// Lazily generates the Cholesky workload for the given parameters, one task
/// at a time.
///
/// # Panics
///
/// Panics if `params.blocks` does not divide the matrix dimension.
pub fn stream(params: Params) -> TaskStream {
    let blocks = params.blocks;
    let matrix = BlockMatrix::new(0x1000_0000_0000, MATRIX_DIM, blocks, 4);
    stream_over(
        matrix,
        Durations {
            gemm: micros(scale_duration(GEMM_US, OPTIMAL_BLOCKS, blocks)),
            syrk: micros(scale_duration(SYRK_US, OPTIMAL_BLOCKS, blocks)),
            trsm: micros(scale_duration(TRSM_US, OPTIMAL_BLOCKS, blocks)),
            potrf: micros(scale_duration(POTRF_US, OPTIMAL_BLOCKS, blocks)),
        },
    )
}

/// A scaled-up Cholesky stream with **at least** `target_tasks` tasks: a
/// bigger matrix factorised at the Table II-optimal 64×64-element tile size
/// (so per-task durations stay calibrated and only the task count grows).
pub fn stream_scaled(target_tasks: usize) -> TaskStream {
    let mut blocks = OPTIMAL_BLOCKS;
    while task_count(blocks) < target_tasks {
        blocks += 1;
    }
    let tile = MATRIX_DIM / OPTIMAL_BLOCKS;
    let matrix = BlockMatrix::new(0x1000_0000_0000, blocks * tile, blocks, 4);
    stream_over(
        matrix,
        Durations {
            gemm: micros(GEMM_US),
            syrk: micros(SYRK_US),
            trsm: micros(TRSM_US),
            potrf: micros(POTRF_US),
        },
    )
}

/// Generates the Cholesky workload for the given parameters (the eager
/// `collect()` of [`stream`]).
///
/// # Panics
///
/// Panics if `params.blocks` does not divide the matrix dimension.
pub fn generate(params: Params) -> Workload {
    stream(params).into_workload()
}

/// The software-optimal and TDM-optimal granularities coincide for Cholesky
/// (Table II): 5,984 tasks of ≈183 µs.
pub fn software_optimal() -> Workload {
    generate(Params::default())
}

/// See [`software_optimal`].
pub fn tdm_optimal() -> Workload {
    software_optimal()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::{check_calibration, Benchmark};
    use tdm_runtime::tdg::TaskGraph;

    #[test]
    fn task_count_matches_table2() {
        assert_eq!(task_count(32), 5_984);
        let w = software_optimal();
        assert_eq!(w.len(), 5_984);
        check_calibration(&w, Benchmark::Cholesky.table2_software(), 0.01, 0.03).unwrap();
    }

    #[test]
    fn panel_structure_is_a_dag_with_parallel_updates() {
        let w = generate(Params { blocks: 8 });
        assert_eq!(w.len(), task_count(8));
        let graph = TaskGraph::build(&w);
        // Only the first potrf is ready at creation.
        assert_eq!(graph.roots().len(), 1);
        // The critical path spans several panels but is far shorter than the
        // task count: the trailing updates of a panel run in parallel.
        assert!(graph.critical_path_len() >= 8);
        assert!(graph.critical_path_len() < w.len() / 2);
    }

    #[test]
    fn kernel_mix_matches_closed_form() {
        let w = generate(Params { blocks: 8 });
        let gemms = w.tasks.iter().filter(|t| t.kind == "sgemm").count();
        let syrks = w.tasks.iter().filter(|t| t.kind == "ssyrk").count();
        let trsms = w.tasks.iter().filter(|t| t.kind == "strsm").count();
        let potrfs = w.tasks.iter().filter(|t| t.kind == "spotrf").count();
        assert_eq!(gemms, 8 * 7 * 6 / 6);
        assert_eq!(syrks, 8 * 7 / 2);
        assert_eq!(trsms, 8 * 7 / 2);
        assert_eq!(potrfs, 8);
    }

    #[test]
    fn coarser_blocking_means_fewer_longer_tasks() {
        let fine = generate(Params { blocks: 32 });
        let coarse = generate(Params { blocks: 16 });
        assert!(coarse.len() < fine.len());
        assert!(coarse.average_duration() > fine.average_duration());
        // Total work stays in the same ballpark (±20%): fewer tasks, each
        // proportionally longer.
        let fine_work = fine.total_work().as_f64();
        let coarse_work = coarse.total_work().as_f64();
        assert!((coarse_work / fine_work - 1.0).abs() < 0.2);
    }

    #[test]
    fn dependences_use_block_sized_regions() {
        let w = software_optimal();
        for task in &w.tasks {
            for dep in &task.deps {
                assert_eq!(dep.size, 64 * 64 * 4);
            }
        }
    }

    #[test]
    fn graph_is_creation_ordered_dag() {
        let w = generate(Params { blocks: 8 });
        let graph = TaskGraph::build(&w);
        // Every edge points from an earlier task to a later one.
        for (t, _) in w.iter() {
            for &succ in graph.successors(t) {
                assert!(succ.index() > t.index());
            }
        }
    }
}
