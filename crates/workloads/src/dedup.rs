//! Dedup (PARSECSs): compression pipeline with serialized I/O.
//!
//! Each input chunk is compressed by an independent compute task and then
//! written to the output archive by an I/O task. The archive is written
//! strictly in order, so the I/O tasks form a chain (the paper models this
//! with control dependences); a final verification task reads every chunk's
//! completion flag. Because every I/O task has two successors (the next I/O
//! task and the verifier) while compute tasks have one, the Successor
//! scheduler prioritizes the I/O chain and overlaps it with the remaining
//! compression work — the 23 % improvement reported in Section VI-A. FIFO
//! instead drains the (earlier-ready) compute tasks first and serializes the
//! I/O chain after them.
//!
//! The task granularity of Dedup cannot be changed without restructuring the
//! application (Section IV-B), so there is a single generation point:
//! 244 tasks of ≈27.7 ms on average.

use tdm_runtime::task::{DependenceSpec, TaskSpec, Workload};

use crate::spec::micros;
use crate::stream::TaskStream;

/// Number of input chunks (one compute + one I/O task each).
pub const CHUNKS: usize = 121;

/// Duration of a compression task in microseconds.
const COMPUTE_US: f64 = 50_000.0;
/// Duration of an I/O (archive write) task in microseconds.
const IO_US: f64 = 5_300.0;
/// Duration of the final verification task in microseconds.
const VERIFY_US: f64 = 40_000.0;

/// Base address of the compressed-chunk buffers.
const COMPRESSED_BASE: u64 = 0x5000_0000_0000;
/// Address representing the output archive file position (serializes I/O).
const ARCHIVE_ADDR: u64 = 0x5100_0000_0000;
/// Base address of the archive index records updated by the I/O tasks and
/// read by the verifier.
const INDEX_BASE: u64 = 0x5200_0000_0000;
/// Number of archive index records (chunk `i` updates record `i % 16`).
const INDEX_RECORDS: u64 = 16;
/// Base address of the (read-only) input chunks.
const INPUT_BASE: u64 = 0x5300_0000_0000;

/// Lazily generates a Dedup pipeline over `chunks` input chunks:
/// 2×`chunks` pipeline tasks, one leading scan task and one trailing
/// verification task.
pub fn stream_with_chunks(chunks: usize) -> TaskStream {
    let chunk_bytes = 2 * 1024 * 1024;

    // A leading scan task that partitions the input (reads nothing tracked,
    // writes the chunk boundaries the compute tasks read).
    let scan = std::iter::once(TaskSpec::new(
        "scan",
        micros(10_000.0),
        vec![DependenceSpec::output(INPUT_BASE, 4096)],
    ));

    let pipeline = (0..chunks).flat_map(move |chunk| {
        let compressed = COMPRESSED_BASE + chunk as u64 * chunk_bytes;
        let index = INDEX_BASE + (chunk as u64 % INDEX_RECORDS) * 64;
        [
            TaskSpec::new(
                "compress",
                micros(COMPUTE_US),
                vec![
                    DependenceSpec::input(INPUT_BASE, 4096),
                    DependenceSpec::output(compressed, chunk_bytes),
                ],
            ),
            TaskSpec::new(
                "write",
                micros(IO_US),
                vec![
                    DependenceSpec::input(compressed, chunk_bytes),
                    DependenceSpec::inout(ARCHIVE_ADDR, 4096),
                    DependenceSpec::inout(index, 64),
                ],
            ),
        ]
        .into_iter()
    });

    // Final verification reads the archive and every index record.
    let verify = std::iter::once_with(|| {
        let mut verify_deps = vec![DependenceSpec::input(ARCHIVE_ADDR, 4096)];
        verify_deps
            .extend((0..INDEX_RECORDS).map(|r| DependenceSpec::input(INDEX_BASE + r * 64, 64)));
        TaskSpec::new("verify", micros(VERIFY_US), verify_deps)
    });

    TaskStream::new("dedup", 2 * chunks + 2, scan.chain(pipeline).chain(verify))
}

/// Lazily generates the Table II Dedup workload ([`CHUNKS`] chunks).
pub fn stream() -> TaskStream {
    stream_with_chunks(CHUNKS)
}

/// A scaled-up Dedup stream with at least `target_tasks` tasks: a longer
/// input (more chunks through the same pipeline).
pub fn stream_scaled(target_tasks: usize) -> TaskStream {
    stream_with_chunks(target_tasks.saturating_sub(2).div_ceil(2).max(1))
}

/// Generates the Dedup workload: 2×[`CHUNKS`] pipeline tasks, one leading
/// scan task and one trailing verification task (244 total; the eager
/// `collect()` of [`stream`]).
pub fn generate() -> Workload {
    stream().into_workload()
}

/// The single granularity point (software and TDM coincide).
pub fn software_optimal() -> Workload {
    generate()
}

/// See [`software_optimal`].
pub fn tdm_optimal() -> Workload {
    generate()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::{check_calibration, Benchmark};
    use tdm_runtime::task::TaskRef;
    use tdm_runtime::tdg::TaskGraph;

    #[test]
    fn task_count_and_duration_match_table2() {
        let w = generate();
        assert_eq!(w.len(), 244);
        check_calibration(&w, Benchmark::Dedup.table2_software(), 0.01, 0.03).unwrap();
    }

    #[test]
    fn io_tasks_form_a_chain() {
        let w = generate();
        let graph = TaskGraph::build(&w);
        // write_i (index 2 + 2i + 1) depends on write_{i-1} through the
        // archive pointer and on compress_i through the compressed buffer.
        let write_1 = TaskRef(4); // scan, compress_0, write_0, compress_1, write_1
        let preds = graph.predecessors(write_1);
        assert!(preds.contains(&TaskRef(2)), "write_1 waits for write_0");
        assert!(preds.contains(&TaskRef(3)), "write_1 waits for compress_1");
    }

    #[test]
    fn io_tasks_have_two_successors_compute_tasks_one() {
        let w = generate();
        let graph = TaskGraph::build(&w);
        // compress_5 is task index 1 + 2*5 = 11; write_5 is 12.
        let compress_5 = TaskRef(11);
        let write_5 = TaskRef(12);
        assert_eq!(graph.successor_count(compress_5), 1);
        assert_eq!(graph.successor_count(write_5), 2);
    }

    #[test]
    fn verifier_waits_for_the_last_writer_of_every_index_record() {
        let w = generate();
        let graph = TaskGraph::build(&w);
        let verify = TaskRef(w.len() - 1);
        // One distinct predecessor per index record (the archive's last
        // writer is also one of them); every other write task is ordered
        // before those transitively through the archive chain.
        assert_eq!(graph.predecessors(verify).len(), INDEX_RECORDS as usize);
        // The verifier is the last task on the critical path.
        assert!(graph.successors(verify).is_empty());
    }

    #[test]
    fn compute_dominates_total_work() {
        let w = generate();
        let compute: f64 = w
            .tasks
            .iter()
            .filter(|t| t.kind == "compress")
            .map(|t| t.duration.as_f64())
            .sum();
        let io: f64 = w
            .tasks
            .iter()
            .filter(|t| t.kind == "write")
            .map(|t| t.duration.as_f64())
            .sum();
        assert!(compute > 5.0 * io);
    }
}
