//! Shared helpers for the tiled dense linear-algebra benchmarks
//! (Cholesky, LU, QR).
//!
//! The matrices are stored blocked: block `(i, j)` of an `n × n` block grid
//! occupies a contiguous region of `block_bytes` bytes. The dependence
//! addresses the tasks declare are the base addresses of these regions —
//! exactly the situation Section III-B1 describes, where the low
//! `log2(block_bytes)` bits of every dependence address are identical and a
//! naive DAT index would collide.

/// Address layout of a blocked square matrix.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BlockMatrix {
    /// Base address of the matrix.
    pub base: u64,
    /// Blocks per dimension.
    pub blocks: usize,
    /// Bytes per block.
    pub block_bytes: u64,
}

impl BlockMatrix {
    /// Creates the layout of a `dim × dim` element matrix of `elem_bytes`-byte
    /// elements split into `blocks × blocks` tiles.
    ///
    /// # Panics
    ///
    /// Panics if `blocks` is zero or does not divide `dim`.
    pub fn new(base: u64, dim: usize, blocks: usize, elem_bytes: u64) -> Self {
        assert!(blocks > 0, "need at least one block per dimension");
        assert!(
            dim.is_multiple_of(blocks),
            "matrix dimension {dim} must be divisible by blocks {blocks}"
        );
        let tile = (dim / blocks) as u64;
        BlockMatrix {
            base,
            blocks,
            block_bytes: tile * tile * elem_bytes,
        }
    }

    /// Base address of block `(row, col)`.
    ///
    /// # Panics
    ///
    /// Panics if the coordinates are out of range.
    pub fn block(&self, row: usize, col: usize) -> u64 {
        assert!(
            row < self.blocks && col < self.blocks,
            "block ({row},{col}) out of range"
        );
        self.base + (row * self.blocks + col) as u64 * self.block_bytes
    }

    /// Bytes per block.
    pub fn block_bytes(&self) -> u64 {
        self.block_bytes
    }
}

/// Scales a calibrated task duration (µs) from a calibrated block count to a
/// different block count, assuming cubic work per tile (O(b³) kernels): a
/// tile twice as small does 8× less work.
pub fn scale_duration(calibrated_us: f64, calibrated_blocks: usize, blocks: usize) -> f64 {
    let ratio = calibrated_blocks as f64 / blocks as f64;
    calibrated_us * ratio * ratio * ratio
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn block_addresses_are_disjoint_and_strided() {
        let m = BlockMatrix::new(0x1000_0000, 2048, 32, 4);
        assert_eq!(m.block_bytes(), 64 * 64 * 4);
        assert_eq!(m.block(0, 0), 0x1000_0000);
        assert_eq!(m.block(0, 1), 0x1000_0000 + 16384);
        assert_eq!(m.block(1, 0), 0x1000_0000 + 32 * 16384);
        // All block addresses are unique.
        let mut addrs: Vec<u64> = (0..32)
            .flat_map(|i| (0..32).map(move |j| (i, j)))
            .map(|(i, j)| m.block(i, j))
            .collect();
        addrs.sort_unstable();
        addrs.dedup();
        assert_eq!(addrs.len(), 32 * 32);
    }

    #[test]
    #[should_panic(expected = "divisible")]
    fn non_divisible_blocking_panics() {
        let _ = BlockMatrix::new(0, 1000, 7, 4);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn out_of_range_block_panics() {
        let m = BlockMatrix::new(0, 64, 4, 4);
        let _ = m.block(4, 0);
    }

    #[test]
    fn duration_scaling_is_cubic() {
        // Halving the number of blocks per dimension doubles the tile edge,
        // so each task does 8x the work.
        assert!((scale_duration(100.0, 32, 16) - 800.0).abs() < 1e-9);
        assert!((scale_duration(100.0, 32, 64) - 12.5).abs() < 1e-9);
        assert!((scale_duration(100.0, 32, 32) - 100.0).abs() < 1e-9);
    }
}
