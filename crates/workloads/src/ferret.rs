//! Ferret (PARSECSs): content-based similarity search pipeline.
//!
//! Each query image flows through six pipeline stages (load, segment,
//! extract, vector, rank, output). Stages of the same query are chained by
//! the per-query buffer; the final output stage appends to a shared results
//! file and is therefore serialized across queries. With 256 queries this
//! yields the 1,536 tasks of Table II.

use tdm_runtime::task::{DependenceSpec, TaskSpec, Workload};

use crate::spec::micros;
use crate::stream::TaskStream;

/// Number of query images.
pub const QUERIES: usize = 256;
/// Pipeline stages per query.
pub const STAGES: usize = 6;

/// Stage names, in pipeline order.
pub const STAGE_NAMES: [&str; STAGES] = ["load", "segment", "extract", "vector", "rank", "output"];

/// Stage durations in microseconds. The vector/rank stages dominate and the
/// serialized output stage is short (it only appends a result record); the
/// average over all stages is Table II's ≈7,667 µs.
const STAGE_US: [f64; STAGES] = [2_000.0, 4_000.0, 6_000.0, 20_500.0, 13_000.0, 500.0];

/// Base address of the per-query, per-stage buffers.
const BUFFER_BASE: u64 = 0x6000_0000_0000;
/// Address of the shared results file position.
const RESULTS_ADDR: u64 = 0x6100_0000_0000;

/// Lazily generates a Ferret pipeline over `queries` query images.
pub fn stream_with_queries(queries: usize) -> TaskStream {
    let buffer_bytes = 256 * 1024;
    let iter = (0..queries).flat_map(move |query| {
        (0..STAGES).map(move |stage| {
            let out_buffer = BUFFER_BASE + (query * STAGES + stage) as u64 * buffer_bytes;
            let mut deps = Vec::new();
            if stage > 0 {
                let in_buffer = BUFFER_BASE + (query * STAGES + stage - 1) as u64 * buffer_bytes;
                deps.push(DependenceSpec::input(in_buffer, buffer_bytes));
            }
            if stage == STAGES - 1 {
                // The output stage appends to the shared results file.
                deps.push(DependenceSpec::inout(RESULTS_ADDR, 4096));
            } else {
                deps.push(DependenceSpec::output(out_buffer, buffer_bytes));
            }
            TaskSpec::new(STAGE_NAMES[stage], micros(STAGE_US[stage]), deps)
        })
    });
    TaskStream::new("ferret", queries * STAGES, iter)
}

/// Lazily generates the Table II Ferret workload ([`QUERIES`] queries).
pub fn stream() -> TaskStream {
    stream_with_queries(QUERIES)
}

/// A scaled-up Ferret stream with at least `target_tasks` tasks: more query
/// images through the same six-stage pipeline.
pub fn stream_scaled(target_tasks: usize) -> TaskStream {
    stream_with_queries(target_tasks.div_ceil(STAGES).max(1))
}

/// Generates the Ferret workload (the eager `collect()` of [`stream`]).
pub fn generate() -> Workload {
    stream().into_workload()
}

/// The single granularity point (pipeline stages are fixed by the
/// application, Section IV-B).
pub fn software_optimal() -> Workload {
    generate()
}

/// See [`software_optimal`].
pub fn tdm_optimal() -> Workload {
    generate()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::{check_calibration, Benchmark};
    use tdm_runtime::task::TaskRef;
    use tdm_runtime::tdg::TaskGraph;

    #[test]
    fn task_count_and_duration_match_table2() {
        let w = generate();
        assert_eq!(w.len(), 1_536);
        check_calibration(&w, Benchmark::Ferret.table2_software(), 0.01, 0.03).unwrap();
    }

    #[test]
    fn stages_of_a_query_are_chained() {
        let w = generate();
        let graph = TaskGraph::build(&w);
        // Stage 3 of query 10 depends on stage 2 of query 10.
        let stage3 = TaskRef(10 * STAGES + 3);
        let stage2 = TaskRef(10 * STAGES + 2);
        assert_eq!(graph.predecessors(stage3), &[stage2]);
    }

    #[test]
    fn output_stages_are_serialized_across_queries() {
        let w = generate();
        let graph = TaskGraph::build(&w);
        let out_q1 = TaskRef(STAGES + STAGES - 1);
        let preds = graph.predecessors(out_q1);
        // Waits for its own rank stage and for the previous query's output.
        assert!(preds.contains(&TaskRef(STAGES + STAGES - 2)));
        assert!(preds.contains(&TaskRef(STAGES - 1)));
    }

    #[test]
    fn queries_are_otherwise_independent() {
        let w = generate();
        let graph = TaskGraph::build(&w);
        // The load stages of all queries are roots.
        assert_eq!(graph.roots().len(), QUERIES);
        // Critical path: one query's six stages plus the serialized outputs
        // of the remaining queries.
        assert_eq!(graph.critical_path_len(), STAGES + QUERIES - 1);
    }

    #[test]
    fn rank_stage_dominates_durations() {
        let w = generate();
        let rank: Vec<_> = w.tasks.iter().filter(|t| t.kind == "vector").collect();
        let load: Vec<_> = w.tasks.iter().filter(|t| t.kind == "load").collect();
        assert!(rank[0].duration > load[0].duration);
        assert_eq!(rank.len(), QUERIES);
    }
}
