//! Fluidanimate (PARSECSs): smoothed-particle-hydrodynamics 3D stencil.
//!
//! The simulation volume is split into partitions; every timestep each
//! partition is updated by one task that reads its neighbouring partitions
//! and writes its own. Figure 6 sweeps the number of partitions (256 down to
//! 32); the optimal point of Table II is 256 partitions × 10 timesteps =
//! 2,560 tasks of ≈1,804 µs.

use tdm_runtime::task::{DependenceSpec, TaskSpec, Workload};

use crate::spec::micros;
use crate::stream::TaskStream;

/// Partitions of the 3D volume at the optimal granularity.
pub const OPTIMAL_PARTITIONS: usize = 256;
/// Simulated timesteps.
pub const TIMESTEPS: usize = 10;

/// Task duration at the optimal granularity, in microseconds.
const TASK_US: f64 = 1_804.0;

/// Base address of the partition data.
const PARTITION_BASE: u64 = 0x7000_0000_0000;

/// Generation parameters.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Params {
    /// Number of volume partitions (Figure 6 granularity knob).
    pub partitions: usize,
    /// Number of timesteps.
    pub timesteps: usize,
}

impl Default for Params {
    fn default() -> Self {
        Params {
            partitions: OPTIMAL_PARTITIONS,
            timesteps: TIMESTEPS,
        }
    }
}

/// Lazily generates the Fluidanimate workload: a 1D domain decomposition of
/// the 3D volume with double-buffered particle state. In each timestep a
/// task reads the previous-step buffers of its own partition and of both
/// neighbours and writes its partition's current-step buffer, so partitions
/// within a timestep update in parallel and timesteps chain through the
/// buffers.
pub fn stream(params: Params) -> TaskStream {
    assert!(params.partitions > 0, "need at least one partition");
    let partitions = params.partitions;
    // Total work is constant: fewer partitions means proportionally longer
    // tasks.
    let task_us = TASK_US * OPTIMAL_PARTITIONS as f64 / partitions as f64;
    let partition_bytes = 8 * 1024 * 1024 / partitions as u64;
    let duration = micros(task_us);
    // Two buffers per partition (ping-pong across timesteps).
    let addr =
        move |p: usize, buffer: usize| PARTITION_BASE + (p * 2 + buffer) as u64 * partition_bytes;

    let iter = (0..params.timesteps).flat_map(move |step| {
        let read_buf = step % 2;
        let write_buf = 1 - read_buf;
        (0..partitions).map(move |p| {
            let mut deps = vec![
                DependenceSpec::input(addr(p, read_buf), partition_bytes),
                DependenceSpec::output(addr(p, write_buf), partition_bytes),
            ];
            if p > 0 {
                deps.push(DependenceSpec::input(
                    addr(p - 1, read_buf),
                    partition_bytes,
                ));
            }
            if p + 1 < partitions {
                deps.push(DependenceSpec::input(
                    addr(p + 1, read_buf),
                    partition_bytes,
                ));
            }
            TaskSpec::new("advance_cell", duration, deps)
        })
    });
    TaskStream::new("fluidanimate", params.partitions * params.timesteps, iter)
        .with_locality_benefit(0.04)
}

/// A scaled-up Fluidanimate stream with at least `target_tasks` tasks: a
/// longer simulation (more timesteps) at the optimal partitioning.
pub fn stream_scaled(target_tasks: usize) -> TaskStream {
    stream(Params {
        partitions: OPTIMAL_PARTITIONS,
        timesteps: target_tasks.div_ceil(OPTIMAL_PARTITIONS).max(1),
    })
}

/// Generates the Fluidanimate workload (the eager `collect()` of
/// [`stream`]).
pub fn generate(params: Params) -> Workload {
    stream(params).into_workload()
}

/// Optimal granularity (software and TDM coincide): 2,560 tasks of ≈1,804 µs.
pub fn software_optimal() -> Workload {
    generate(Params::default())
}

/// See [`software_optimal`].
pub fn tdm_optimal() -> Workload {
    software_optimal()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::{check_calibration, Benchmark};
    use tdm_runtime::task::TaskRef;
    use tdm_runtime::tdg::TaskGraph;

    #[test]
    fn task_count_and_duration_match_table2() {
        let w = software_optimal();
        assert_eq!(w.len(), 2_560);
        check_calibration(&w, Benchmark::Fluidanimate.table2_software(), 0.01, 0.01).unwrap();
    }

    #[test]
    fn stencil_reads_neighbours() {
        let w = generate(Params {
            partitions: 8,
            timesteps: 2,
        });
        let graph = TaskGraph::build(&w);
        // Partition 3 in timestep 1 (task 8 + 3) reads the timestep-0 output
        // of partitions 2, 3 and 4 and overwrites the buffer those tasks
        // read, so its predecessors are exactly the timestep-0 tasks of the
        // stencil neighbourhood.
        let t = TaskRef(8 + 3);
        let preds = graph.predecessors(t);
        assert!(preds.contains(&TaskRef(2)));
        assert!(preds.contains(&TaskRef(3)));
        assert!(preds.contains(&TaskRef(4)));
        // Tasks of the same timestep are not serialized against each other.
        assert!(!preds.contains(&TaskRef(10)));
    }

    #[test]
    fn first_timestep_has_wavefront_structure() {
        // Within the first timestep, the `in` on a neighbour that is written
        // (inout) by a later task in creation order does not create a
        // backward edge, so partition 0 is a root.
        let w = generate(Params {
            partitions: 8,
            timesteps: 1,
        });
        let graph = TaskGraph::build(&w);
        assert!(graph.roots().contains(&TaskRef(0)));
    }

    #[test]
    fn fewer_partitions_means_longer_tasks() {
        let fine = generate(Params {
            partitions: 256,
            timesteps: 2,
        });
        let coarse = generate(Params {
            partitions: 32,
            timesteps: 2,
        });
        assert!(coarse.len() < fine.len());
        assert!(coarse.average_duration() > fine.average_duration());
        let ratio = coarse.total_work().as_f64() / fine.total_work().as_f64();
        assert!((0.95..1.05).contains(&ratio));
    }

    #[test]
    fn timesteps_are_serialized_per_partition() {
        let w = generate(Params {
            partitions: 4,
            timesteps: 3,
        });
        let graph = TaskGraph::build(&w);
        assert!(graph.critical_path_len() >= 3);
    }
}
