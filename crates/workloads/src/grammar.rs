//! Seeded random-DAG workload grammar: adversarial dependence shapes.
//!
//! The nine Table II generators reproduce *benign* parallel structure —
//! tiled factorizations, pipelines, reduction trees — whose dependence
//! shapes barely exercise the DMU paths the hardware exists for: alias-table
//! renaming under address reuse, reader-list chaining and overflow, deep
//! serial chains, and creation-rate floods. This module is the adversarial
//! counterpart: a grammar of primitive [`Shape`]s composed into a
//! [`GrammarSpec`], drawn from a single `u64` seed under the workspace
//! seeding contract (see [`tdm_sim::rng`]) and produced as an ordinary
//! [`TaskStream`] — so every generated workload runs eager, streaming,
//! windowed, checkpointed and swept with zero driver changes.
//!
//! The shapes:
//!
//! * [`Shape::Chain`] — a deep critical chain: every task `inout`s one
//!   address, so the region is fully serial no matter how many cores exist.
//! * [`Shape::Fan`] — extreme fan-out/fan-in: one producer, `width`
//!   independent readers, one sink reading all of them (successor-list and
//!   ready-queue pressure).
//! * [`Shape::RenamingStorm`] — many writers reusing a handful of
//!   addresses: back-to-back WAW chains force the alias tables to rename
//!   address versions continuously (DAT/TAT set-conflict and exhaustion
//!   pressure on undersized geometries).
//! * [`Shape::ReaderSwarm`] — waves of one writer followed by a swarm of
//!   readers of the same address: reader lists outgrow
//!   `elems_per_list_entry` and chain across list-array entries, and the
//!   next wave's writer raises a WAR against the whole swarm.
//! * [`Shape::Mixed`] — uniformly random reads/writes over a small block
//!   pool (dense RAW/WAR/WAW collisions, like the conformance suite's
//!   random workloads).
//!
//! Each phase owns a disjoint address region, so phases are mutually
//! independent: a multi-phase spec floods the backend with several
//! concurrent adversarial sub-graphs, and the differential fuzzer
//! (`bench_fuzz`) shrinks a failing spec by halving its shape list without
//! changing the surviving phases' tasks.
//!
//! # Example
//!
//! ```
//! use tdm_workloads::grammar::{GrammarSpec, Shape};
//! use tdm_runtime::stream::TaskSource;
//!
//! // Drawn from a seed: same seed, same spec, same tasks, bit for bit.
//! let spec = GrammarSpec::draw(7);
//! assert_eq!(spec.stream().len(), spec.task_count());
//!
//! // Or composed explicitly (what a shrunken fuzz reproducer replays).
//! let spec = GrammarSpec::new(7, vec![Shape::Chain { len: 4 }]);
//! let mut stream = spec.stream();
//! let first = stream.next_task().unwrap();
//! assert_eq!(first.kind, "chain");
//! ```

use tdm_runtime::task::{DependenceSpec, TaskSpec};
use tdm_sim::clock::Cycle;
use tdm_sim::rng::SplitMix64;

use crate::stream::TaskStream;

/// Base of the grammar's address space (clear of every Table II generator's
/// regions and the conformance suite's random-workload pool).
const GRAMMAR_BASE: u64 = 0x9000_0000_0000;
/// Address stride between phases: each phase's region is disjoint.
const PHASE_STRIDE: u64 = 0x100_0000;
/// Block granularity inside a phase region.
const BLOCK_SIZE: u64 = 0x1000;

/// Shortest task body, in cycles.
const MIN_DURATION: u64 = 2_000;
/// Span of task-body durations above [`MIN_DURATION`], in cycles.
const DURATION_SPAN: u64 = 150_000;

/// One primitive dependence shape of the grammar.
///
/// Every variant has a closed-form [`task_count`](Shape::task_count) so a
/// composed spec can declare its stream length exactly, and a compact
/// [`encode`](Shape::encode)/[`parse`](Shape::parse) text form so fuzz
/// reproducers are replayable from a command line.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Shape {
    /// `len` tasks in a fully serial `inout` chain over one address.
    Chain {
        /// Chain length in tasks.
        len: usize,
    },
    /// Producer → `width` parallel readers → one fan-in sink.
    Fan {
        /// Number of parallel readers between producer and sink.
        width: usize,
    },
    /// `writers` output-only tasks cycling over `addrs` addresses (WAW
    /// renaming pressure).
    RenamingStorm {
        /// Number of writer tasks.
        writers: usize,
        /// Number of distinct addresses they reuse.
        addrs: usize,
    },
    /// `waves` repetitions of one writer followed by `readers` readers of
    /// the same address (reader-list chaining + WAR pressure).
    ReaderSwarm {
        /// Readers per wave.
        readers: usize,
        /// Number of writer+swarm waves.
        waves: usize,
    },
    /// `tasks` tasks with 0–4 random-direction dependences over a 16-block
    /// pool.
    Mixed {
        /// Number of random tasks.
        tasks: usize,
    },
}

impl Shape {
    /// Exact number of tasks this shape generates.
    pub fn task_count(&self) -> usize {
        match *self {
            Shape::Chain { len } => len,
            Shape::Fan { width } => width + 2,
            Shape::RenamingStorm { writers, .. } => writers,
            Shape::ReaderSwarm { readers, waves } => (readers + 1) * waves,
            Shape::Mixed { tasks } => tasks,
        }
    }

    /// Compact text form, e.g. `chain:32`, `storm:64x4`, `swarm:24x2`.
    pub fn encode(&self) -> String {
        match *self {
            Shape::Chain { len } => format!("chain:{len}"),
            Shape::Fan { width } => format!("fan:{width}"),
            Shape::RenamingStorm { writers, addrs } => format!("storm:{writers}x{addrs}"),
            Shape::ReaderSwarm { readers, waves } => format!("swarm:{readers}x{waves}"),
            Shape::Mixed { tasks } => format!("mixed:{tasks}"),
        }
    }

    /// Parses the [`encode`](Shape::encode) form; errors name the offending
    /// token.
    pub fn parse(text: &str) -> Result<Shape, String> {
        let (kind, params) = text
            .split_once(':')
            .ok_or_else(|| format!("shape {text:?}: expected kind:params"))?;
        let one = |value: &str| -> Result<usize, String> {
            let n: usize = value.parse().map_err(|e| format!("shape {text:?}: {e}"))?;
            if n == 0 {
                return Err(format!("shape {text:?}: parameter must be at least 1"));
            }
            Ok(n)
        };
        let two = |value: &str| -> Result<(usize, usize), String> {
            let (a, b) = value
                .split_once('x')
                .ok_or_else(|| format!("shape {text:?}: expected AxB parameters"))?;
            Ok((one(a)?, one(b)?))
        };
        match kind {
            "chain" => Ok(Shape::Chain { len: one(params)? }),
            "fan" => Ok(Shape::Fan {
                width: one(params)?,
            }),
            "storm" => {
                let (writers, addrs) = two(params)?;
                Ok(Shape::RenamingStorm { writers, addrs })
            }
            "swarm" => {
                let (readers, waves) = two(params)?;
                Ok(Shape::ReaderSwarm { readers, waves })
            }
            "mixed" => Ok(Shape::Mixed {
                tasks: one(params)?,
            }),
            other => Err(format!(
                "shape {text:?}: unknown kind {other:?} (known: chain, fan, storm, swarm, mixed)"
            )),
        }
    }

    /// Draws one shape with random parameters from `rng`.
    fn draw(rng: &mut SplitMix64) -> Shape {
        match rng.next_below(5) {
            0 => Shape::Chain {
                len: 8 + rng.next_below(89) as usize,
            },
            1 => Shape::Fan {
                width: 8 + rng.next_below(57) as usize,
            },
            2 => Shape::RenamingStorm {
                writers: 16 + rng.next_below(113) as usize,
                addrs: 2 + rng.next_below(5) as usize,
            },
            3 => Shape::ReaderSwarm {
                readers: 12 + rng.next_below(37) as usize,
                waves: 1 + rng.next_below(3) as usize,
            },
            _ => Shape::Mixed {
                tasks: 16 + rng.next_below(81) as usize,
            },
        }
    }

    /// Materialises this shape's tasks for phase region `base`, drawing
    /// durations (and Mixed's dependences) from `rng` in creation order.
    fn build(&self, mut rng: SplitMix64, base: u64) -> Vec<TaskSpec> {
        let duration =
            |rng: &mut SplitMix64| Cycle::new(MIN_DURATION + rng.next_below(DURATION_SPAN));
        let mut tasks = Vec::with_capacity(self.task_count());
        match *self {
            Shape::Chain { len } => {
                for _ in 0..len {
                    tasks.push(TaskSpec::new(
                        "chain",
                        duration(&mut rng),
                        vec![DependenceSpec::inout(base, BLOCK_SIZE)],
                    ));
                }
            }
            Shape::Fan { width } => {
                tasks.push(TaskSpec::new(
                    "fan_src",
                    duration(&mut rng),
                    vec![DependenceSpec::output(base, BLOCK_SIZE)],
                ));
                let mut sink_deps = Vec::with_capacity(width);
                for i in 0..width {
                    let out = base + (1 + i as u64) * BLOCK_SIZE;
                    tasks.push(TaskSpec::new(
                        "fan_leaf",
                        duration(&mut rng),
                        vec![
                            DependenceSpec::input(base, BLOCK_SIZE),
                            DependenceSpec::output(out, BLOCK_SIZE),
                        ],
                    ));
                    sink_deps.push(DependenceSpec::input(out, BLOCK_SIZE));
                }
                tasks.push(TaskSpec::new("fan_sink", duration(&mut rng), sink_deps));
            }
            Shape::RenamingStorm { writers, addrs } => {
                for i in 0..writers {
                    let addr = base + (i % addrs) as u64 * BLOCK_SIZE;
                    tasks.push(TaskSpec::new(
                        "storm_writer",
                        duration(&mut rng),
                        vec![DependenceSpec::output(addr, BLOCK_SIZE)],
                    ));
                }
            }
            Shape::ReaderSwarm { readers, waves } => {
                for _ in 0..waves {
                    tasks.push(TaskSpec::new(
                        "swarm_writer",
                        duration(&mut rng),
                        vec![DependenceSpec::output(base, BLOCK_SIZE)],
                    ));
                    for _ in 0..readers {
                        tasks.push(TaskSpec::new(
                            "swarm_reader",
                            duration(&mut rng),
                            vec![DependenceSpec::input(base, BLOCK_SIZE)],
                        ));
                    }
                }
            }
            Shape::Mixed { tasks: count } => {
                const POOL: u64 = 16;
                for _ in 0..count {
                    let num_deps = rng.next_below(5) as usize;
                    let deps = (0..num_deps)
                        .map(|_| {
                            let addr = base + rng.next_below(POOL) * BLOCK_SIZE;
                            match rng.next_below(3) {
                                0 => DependenceSpec::input(addr, BLOCK_SIZE),
                                1 => DependenceSpec::output(addr, BLOCK_SIZE),
                                _ => DependenceSpec::inout(addr, BLOCK_SIZE),
                            }
                        })
                        .collect();
                    tasks.push(TaskSpec::new("mixed", duration(&mut rng), deps));
                }
            }
        }
        debug_assert_eq!(tasks.len(), self.task_count());
        tasks
    }
}

/// A composed grammar workload: a seed plus an ordered list of shapes, one
/// phase per shape.
///
/// The seed does double duty: [`GrammarSpec::draw`] derives the shape list
/// itself from it, and [`GrammarSpec::stream`] derives every phase's content
/// RNG from it (`seed ^ phase·φ`, the workspace's derived-stream rule) — so
/// an explicitly composed spec with the same seed and shapes reproduces a
/// drawn spec's tasks exactly. That is what makes fuzz shrinking sound:
/// halving the shape list never perturbs the remaining phases.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct GrammarSpec {
    /// Content seed (and, for drawn specs, the shape-list seed).
    pub seed: u64,
    /// Ordered phases.
    pub shapes: Vec<Shape>,
}

impl GrammarSpec {
    /// Composes a spec explicitly (the fuzz-reproducer path).
    pub fn new(seed: u64, shapes: Vec<Shape>) -> Self {
        GrammarSpec { seed, shapes }
    }

    /// Draws a spec from a seed: 1–5 phases of random shapes. A pure
    /// function of the seed.
    pub fn draw(seed: u64) -> Self {
        let mut rng = SplitMix64::new(seed);
        let phases = 1 + rng.next_below(5) as usize;
        let shapes = (0..phases).map(|_| Shape::draw(&mut rng)).collect();
        GrammarSpec { seed, shapes }
    }

    /// Exact total task count across all phases.
    pub fn task_count(&self) -> usize {
        self.shapes.iter().map(Shape::task_count).sum()
    }

    /// Workload name carried into reports and snapshots.
    pub fn name(&self) -> String {
        format!("grammar-{}", self.seed)
    }

    /// Compact text form of the shape list, e.g. `chain:32,storm:64x4`
    /// (what `bench_fuzz --shapes` replays).
    pub fn encode(&self) -> String {
        self.shapes
            .iter()
            .map(Shape::encode)
            .collect::<Vec<_>>()
            .join(",")
    }

    /// Parses an [`encode`](GrammarSpec::encode)d shape list for `seed`.
    pub fn parse(seed: u64, text: &str) -> Result<Self, String> {
        let shapes = text
            .split(',')
            .map(str::trim)
            .filter(|s| !s.is_empty())
            .map(Shape::parse)
            .collect::<Result<Vec<_>, _>>()?;
        if shapes.is_empty() {
            return Err("shape list is empty".to_string());
        }
        Ok(GrammarSpec { seed, shapes })
    }

    /// Produces the spec's lazy [`TaskStream`]. Phases materialise one at a
    /// time inside the iterator (peak resident memory is one phase, a few
    /// hundred specs at most), and every call yields the identical task
    /// sequence.
    pub fn stream(&self) -> TaskStream {
        let seed = self.seed;
        let shapes = self.shapes.clone();
        let iter = shapes
            .into_iter()
            .enumerate()
            .flat_map(move |(phase, shape)| {
                let rng =
                    SplitMix64::new(seed ^ (phase as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15));
                let base = GRAMMAR_BASE + phase as u64 * PHASE_STRIDE;
                shape.build(rng, base)
            });
        TaskStream::new(self.name(), self.task_count(), iter)
    }
}

/// Draws and streams a grammar workload from `seed` in one step.
pub fn stream(seed: u64) -> TaskStream {
    GrammarSpec::draw(seed).stream()
}

/// A single-phase renaming-storm stream (the alias-table stress regression
/// workload).
pub fn renaming_storm(seed: u64, writers: usize, addrs: usize) -> TaskStream {
    GrammarSpec::new(seed, vec![Shape::RenamingStorm { writers, addrs }]).stream()
}

/// A single-phase reader-swarm stream (the reader-list chaining stress
/// regression workload).
pub fn reader_swarm(seed: u64, readers: usize, waves: usize) -> TaskStream {
    GrammarSpec::new(seed, vec![Shape::ReaderSwarm { readers, waves }]).stream()
}

#[cfg(test)]
mod tests {
    use super::*;
    use tdm_runtime::stream::TaskSource;
    use tdm_runtime::task::TaskRef;
    use tdm_runtime::tdg::TaskGraph;

    fn collect(spec: &GrammarSpec) -> Vec<TaskSpec> {
        let mut stream = spec.stream();
        let mut tasks = Vec::new();
        while let Some(t) = stream.next_task() {
            tasks.push(t);
        }
        tasks
    }

    #[test]
    fn drawn_specs_are_pure_functions_of_the_seed() {
        for seed in 0..32u64 {
            let a = GrammarSpec::draw(seed);
            let b = GrammarSpec::draw(seed);
            assert_eq!(a, b);
            assert_eq!(collect(&a), collect(&b), "seed {seed}");
            assert!(!a.shapes.is_empty() && a.shapes.len() <= 5);
        }
    }

    #[test]
    fn stream_length_matches_declared_count() {
        for seed in 0..16u64 {
            let spec = GrammarSpec::draw(seed);
            // into_workload asserts produced == declared.
            let w = spec.stream().into_workload();
            assert_eq!(w.len(), spec.task_count(), "seed {seed}");
        }
    }

    #[test]
    fn halving_the_shape_list_preserves_surviving_phases() {
        let spec = GrammarSpec::draw(3);
        let full = collect(&spec);
        let mut half = spec.clone();
        half.shapes.truncate(half.shapes.len().div_ceil(2));
        let shrunk = collect(&half);
        assert_eq!(shrunk.len(), half.task_count());
        assert_eq!(full[..shrunk.len()], shrunk[..], "prefix must be stable");
    }

    #[test]
    fn chain_is_fully_serial() {
        let spec = GrammarSpec::new(1, vec![Shape::Chain { len: 12 }]);
        let graph = TaskGraph::build(&spec.stream().into_workload());
        assert_eq!(graph.critical_path_len(), 12);
    }

    #[test]
    fn fan_has_wide_middle_and_single_sink() {
        let spec = GrammarSpec::new(2, vec![Shape::Fan { width: 10 }]);
        let w = spec.stream().into_workload();
        assert_eq!(w.len(), 12);
        let graph = TaskGraph::build(&w);
        assert_eq!(graph.roots(), vec![TaskRef(0)]);
        // The sink waits for all ten leaves.
        assert_eq!(graph.predecessors(TaskRef(11)).len(), 10);
        assert_eq!(graph.critical_path_len(), 3);
    }

    #[test]
    fn renaming_storm_serialises_per_address() {
        let spec = GrammarSpec::new(
            4,
            vec![Shape::RenamingStorm {
                writers: 12,
                addrs: 3,
            }],
        );
        let graph = TaskGraph::build(&spec.stream().into_workload());
        // Writers of the same address form a WAW chain: 12 writers over 3
        // addresses = 4 per chain.
        assert_eq!(graph.critical_path_len(), 4);
        assert_eq!(graph.roots().len(), 3);
    }

    #[test]
    fn reader_swarm_waves_serialise_through_war() {
        let spec = GrammarSpec::new(
            5,
            vec![Shape::ReaderSwarm {
                readers: 6,
                waves: 2,
            }],
        );
        let w = spec.stream().into_workload();
        assert_eq!(w.len(), 14);
        let graph = TaskGraph::build(&w);
        // Wave 2's writer waits for every wave-1 reader (WAR) plus the
        // wave-1 writer (WAW).
        assert_eq!(graph.predecessors(TaskRef(7)).len(), 7);
    }

    #[test]
    fn shape_encoding_round_trips() {
        let spec = GrammarSpec::new(
            9,
            vec![
                Shape::Chain { len: 32 },
                Shape::Fan { width: 16 },
                Shape::RenamingStorm {
                    writers: 64,
                    addrs: 4,
                },
                Shape::ReaderSwarm {
                    readers: 24,
                    waves: 2,
                },
                Shape::Mixed { tasks: 40 },
            ],
        );
        let text = spec.encode();
        assert_eq!(text, "chain:32,fan:16,storm:64x4,swarm:24x2,mixed:40");
        assert_eq!(GrammarSpec::parse(9, &text).unwrap(), spec);
        for seed in 0..8u64 {
            let drawn = GrammarSpec::draw(seed);
            assert_eq!(GrammarSpec::parse(seed, &drawn.encode()).unwrap(), drawn);
        }
    }

    #[test]
    fn malformed_shape_lists_are_named_errors() {
        assert!(Shape::parse("chain").unwrap_err().contains("kind:params"));
        assert!(Shape::parse("chain:0").unwrap_err().contains("at least 1"));
        assert!(Shape::parse("storm:64").unwrap_err().contains("AxB"));
        assert!(Shape::parse("nope:3").unwrap_err().contains("unknown kind"));
        assert!(GrammarSpec::parse(1, " , ").unwrap_err().contains("empty"));
        assert!(GrammarSpec::parse(1, "chain:4,bad").is_err());
    }

    #[test]
    fn explicit_spec_reproduces_drawn_spec_tasks() {
        let drawn = GrammarSpec::draw(11);
        let explicit = GrammarSpec::new(11, drawn.shapes.clone());
        assert_eq!(collect(&drawn), collect(&explicit));
    }
}
