//! Histogram: cumulative histogram of a 4096×4096 image.
//!
//! Each local task scans a stripe of the image and produces a private
//! histogram; a binary reduction tree merges the private histograms and a
//! final task computes the cumulative sums. At the optimal granularity of
//! Table II this is 256 local tasks + 255 merge tasks + 1 final task = 512
//! tasks of ≈3,824 µs on average.

use tdm_runtime::task::{DependenceSpec, TaskSpec, Workload};

use crate::spec::micros;
use crate::stream::TaskStream;

/// Local (per-stripe) tasks at the optimal granularity.
pub const OPTIMAL_STRIPES: usize = 256;

/// Duration of a local histogram task, in microseconds.
const LOCAL_US: f64 = 7_350.0;
/// Duration of a merge task, in microseconds.
const MERGE_US: f64 = 300.0;
/// Duration of the final cumulative pass, in microseconds.
const FINAL_US: f64 = 1_000.0;

/// Base address of the image stripes.
const IMAGE_BASE: u64 = 0x8000_0000_0000;
/// Base address of the private/merged histogram buffers.
const HIST_BASE: u64 = 0x8100_0000_0000;

/// Generation parameters.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Params {
    /// Number of image stripes / local tasks (power of two; Figure 6
    /// granularity knob).
    pub stripes: usize,
}

impl Default for Params {
    fn default() -> Self {
        Params {
            stripes: OPTIMAL_STRIPES,
        }
    }
}

/// Lazily generates the Histogram workload.
///
/// # Panics
///
/// Panics if `stripes` is not a power of two greater than one.
pub fn stream(params: Params) -> TaskStream {
    let stripes = params.stripes;
    assert!(
        stripes.is_power_of_two() && stripes > 1,
        "stripes must be a power of two > 1, got {stripes}"
    );
    let image_bytes = 4096u64 * 4096 * 4;
    let stripe_bytes = image_bytes / stripes as u64;
    let hist_bytes = 4096u64;
    // Total scan work is constant across granularities.
    let local_us = LOCAL_US * OPTIMAL_STRIPES as f64 / stripes as f64;

    // Local histograms.
    let locals = (0..stripes).map(move |s| {
        TaskSpec::new(
            "local_hist",
            micros(local_us),
            vec![
                DependenceSpec::input(IMAGE_BASE + s as u64 * stripe_bytes, stripe_bytes),
                DependenceSpec::output(HIST_BASE + s as u64 * hist_bytes, hist_bytes),
            ],
        )
    });
    // Binary reduction tree: level by level, merge pairs into the
    // lower-indexed buffer. At level `l` (1-based) the live nodes are the
    // multiples of 2^l and each merges in its sibling at offset 2^(l-1) —
    // the closed form of the original level-by-level worklist.
    let levels = stripes.trailing_zeros();
    let merges = (1..=levels).flat_map(move |l| {
        let step = 1usize << l;
        (0..stripes / step).map(move |i| {
            let a = i * step;
            let b = a + step / 2;
            TaskSpec::new(
                "merge",
                micros(MERGE_US),
                vec![
                    DependenceSpec::inout(HIST_BASE + a as u64 * hist_bytes, hist_bytes),
                    DependenceSpec::input(HIST_BASE + b as u64 * hist_bytes, hist_bytes),
                ],
            )
        })
    });
    // Final cumulative pass over the root histogram.
    let cumulative = std::iter::once(TaskSpec::new(
        "cumulative",
        micros(FINAL_US),
        vec![DependenceSpec::inout(HIST_BASE, hist_bytes)],
    ));

    // stripes locals + (stripes - 1) merges + 1 final.
    TaskStream::new(
        "histogram",
        2 * stripes,
        locals.chain(merges).chain(cumulative),
    )
}

/// A scaled-up Histogram stream with at least `target_tasks` tasks: a larger
/// image split into more stripes (power of two), with the reduction tree
/// growing along.
pub fn stream_scaled(target_tasks: usize) -> TaskStream {
    let stripes = target_tasks.div_ceil(2).next_power_of_two().max(2);
    stream(Params { stripes })
}

/// Generates the Histogram workload (the eager `collect()` of [`stream`]).
///
/// # Panics
///
/// Panics if `stripes` is not a power of two greater than one.
pub fn generate(params: Params) -> Workload {
    stream(params).into_workload()
}

/// Optimal granularity (software and TDM coincide): 512 tasks of ≈3,824 µs.
pub fn software_optimal() -> Workload {
    generate(Params::default())
}

/// See [`software_optimal`].
pub fn tdm_optimal() -> Workload {
    software_optimal()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::{check_calibration, Benchmark};
    use tdm_runtime::task::TaskRef;
    use tdm_runtime::tdg::TaskGraph;

    #[test]
    fn task_count_and_duration_match_table2() {
        let w = software_optimal();
        assert_eq!(w.len(), 512);
        check_calibration(&w, Benchmark::Histogram.table2_software(), 0.01, 0.03).unwrap();
    }

    #[test]
    fn reduction_tree_structure() {
        let w = generate(Params { stripes: 8 });
        // 8 locals + 7 merges + 1 final = 16 tasks.
        assert_eq!(w.len(), 16);
        let graph = TaskGraph::build(&w);
        // The locals are the only roots.
        assert_eq!(graph.roots().len(), 8);
        // Critical path: local → log2(8) merges → cumulative = 1 + 3 + 1.
        assert_eq!(graph.critical_path_len(), 5);
        // The final task depends on the last merge.
        let final_task = TaskRef(w.len() - 1);
        assert_eq!(graph.predecessors(final_task).len(), 1);
    }

    #[test]
    fn merges_wait_for_both_children() {
        let w = generate(Params { stripes: 4 });
        let graph = TaskGraph::build(&w);
        // First merge (task 4) merges histograms 0 and 1, so it waits for
        // local 0 and local 1.
        let merge0 = TaskRef(4);
        let preds = graph.predecessors(merge0);
        assert!(preds.contains(&TaskRef(0)));
        assert!(preds.contains(&TaskRef(1)));
    }

    #[test]
    fn coarser_stripes_are_longer() {
        let fine = generate(Params { stripes: 256 });
        let coarse = generate(Params { stripes: 32 });
        assert!(coarse.len() < fine.len());
        assert!(coarse.tasks[0].duration > fine.tasks[0].duration);
    }

    #[test]
    #[should_panic(expected = "power of two")]
    fn non_power_of_two_stripes_panics() {
        let _ = generate(Params { stripes: 100 });
    }
}
