//! # tdm-workloads — benchmark task-graph generators
//!
//! The paper evaluates TDM on five PARSECSs benchmarks and four HPC kernels
//! (Section IV-B). This crate generates, for each of them, the stream of
//! tasks the master thread would create — dependences, sizes and durations —
//! calibrated against Table II (number of tasks and average task duration at
//! the optimal granularity for the software runtime and for TDM).
//!
//! The generators reproduce the *parallelization structure* the paper
//! describes: fork-join chains (Blackscholes), tiled factorizations
//! (Cholesky, LU, QR), pipelines (Dedup, Ferret), a 3D stencil
//! (Fluidanimate), a reduction tree (Histogram) and fork-join phases
//! (Streamcluster). Granularity parameters reproduce the sweep of Figure 6.
//!
//! Every generator exists in two task-for-task identical forms: a lazy
//! [`TaskStream`] (each module's `stream` function, the
//! primary implementation) that produces tasks one at a time for the
//! windowed streaming driver, and the eager `generate` / `*_optimal`
//! wrappers that collect the stream into a
//! [`Workload`](tdm_runtime::task::Workload). Scaled-up variants
//! ([`Benchmark::scaled_stream`]) grow each benchmark's input to an
//! arbitrary task count (millions of tasks) without ever materialising the
//! task list.
//!
//! # Example
//!
//! ```
//! use tdm_workloads::Benchmark;
//!
//! let cholesky = Benchmark::Cholesky.software_workload();
//! assert_eq!(cholesky.len(), 5_984); // Table II
//!
//! // The same workload as a lazy stream, scaled to at least a million tasks.
//! let big = Benchmark::Cholesky.scaled_stream(1_000_000);
//! assert!(big.len() >= 1_000_000);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod blackscholes;
pub mod cholesky;
pub mod dedup;
pub mod dense;
pub mod ferret;
pub mod fluidanimate;
pub mod grammar;
pub mod histogram;
pub mod lu;
pub mod qr;
pub mod spec;
pub mod stream;
pub mod streamcluster;

pub use spec::{check_calibration, micros, Benchmark};
pub use stream::TaskStream;
