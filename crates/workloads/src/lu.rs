//! Tiled LU decomposition.
//!
//! The paper decomposes a sparse 2048×2048 matrix; we generate the dense-tile
//! task structure (the sparse version skips a handful of empty-tile updates),
//! which with 16×16 blocks of 128×128 elements yields 1,496 tasks versus the
//! 1,512 of Table II — within 1.1 %.

use tdm_runtime::task::{DependenceSpec, TaskSpec, Workload};

use crate::dense::{scale_duration, BlockMatrix};
use crate::spec::micros;
use crate::stream::TaskStream;

/// Matrix dimension evaluated in the paper.
pub const MATRIX_DIM: usize = 2048;
/// Blocks per dimension at the optimal granularity (128×128-element tiles).
pub const OPTIMAL_BLOCKS: usize = 16;

/// Per-kernel durations (µs) calibrated so the average matches Table II's
/// 424 µs.
const BMOD_US: f64 = 435.0;
const FWD_US: f64 = 380.0;
const BDIV_US: f64 = 380.0;
const LU0_US: f64 = 300.0;

/// Generation parameters.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Params {
    /// Blocks per dimension (Figure 6 granularity knob).
    pub blocks: usize,
}

impl Default for Params {
    fn default() -> Self {
        Params {
            blocks: OPTIMAL_BLOCKS,
        }
    }
}

/// Number of tasks for a given block count.
pub fn task_count(blocks: usize) -> usize {
    let n = blocks;
    // lu0: n, fwd: n(n-1)/2, bdiv: n(n-1)/2, bmod: sum_k (n-1-k)^2.
    let bmod: usize = (0..n).map(|k| (n - 1 - k) * (n - 1 - k)).sum();
    n + n * (n - 1) / 2 + n * (n - 1) / 2 + bmod
}

/// Per-kernel durations in cycles for a given granularity.
#[derive(Debug, Clone, Copy)]
struct Durations {
    bmod: tdm_sim::clock::Cycle,
    fwd: tdm_sim::clock::Cycle,
    bdiv: tdm_sim::clock::Cycle,
    lu0: tdm_sim::clock::Cycle,
}

/// Lazily generates the tiled-LU task sequence over `matrix`.
fn stream_over(matrix: BlockMatrix, d: Durations) -> TaskStream {
    let blocks = matrix.blocks;
    let bytes = matrix.block_bytes();
    let iter = (0..blocks).flat_map(move |k| {
        let panel = std::iter::once(TaskSpec::new(
            "lu0",
            d.lu0,
            vec![DependenceSpec::inout(matrix.block(k, k), bytes)],
        ));
        let fwds = ((k + 1)..blocks).map(move |j| {
            TaskSpec::new(
                "fwd",
                d.fwd,
                vec![
                    DependenceSpec::input(matrix.block(k, k), bytes),
                    DependenceSpec::inout(matrix.block(k, j), bytes),
                ],
            )
        });
        let bdivs = ((k + 1)..blocks).map(move |i| {
            TaskSpec::new(
                "bdiv",
                d.bdiv,
                vec![
                    DependenceSpec::input(matrix.block(k, k), bytes),
                    DependenceSpec::inout(matrix.block(i, k), bytes),
                ],
            )
        });
        let bmods = ((k + 1)..blocks).flat_map(move |i| {
            ((k + 1)..blocks).map(move |j| {
                TaskSpec::new(
                    "bmod",
                    d.bmod,
                    vec![
                        DependenceSpec::input(matrix.block(i, k), bytes),
                        DependenceSpec::input(matrix.block(k, j), bytes),
                        DependenceSpec::inout(matrix.block(i, j), bytes),
                    ],
                )
            })
        });
        panel.chain(fwds).chain(bdivs).chain(bmods)
    });
    TaskStream::new("LU", task_count(blocks), iter).with_locality_benefit(0.04)
}

/// Lazily generates the LU workload, one task at a time.
pub fn stream(params: Params) -> TaskStream {
    let blocks = params.blocks;
    let matrix = BlockMatrix::new(0x2000_0000_0000, MATRIX_DIM, blocks, 4);
    stream_over(
        matrix,
        Durations {
            bmod: micros(scale_duration(BMOD_US, OPTIMAL_BLOCKS, blocks)),
            fwd: micros(scale_duration(FWD_US, OPTIMAL_BLOCKS, blocks)),
            bdiv: micros(scale_duration(BDIV_US, OPTIMAL_BLOCKS, blocks)),
            lu0: micros(scale_duration(LU0_US, OPTIMAL_BLOCKS, blocks)),
        },
    )
}

/// A scaled-up LU stream with at least `target_tasks` tasks: a bigger matrix
/// decomposed at the Table II-optimal 128×128-element tile size.
pub fn stream_scaled(target_tasks: usize) -> TaskStream {
    let mut blocks = OPTIMAL_BLOCKS;
    while task_count(blocks) < target_tasks {
        blocks += 1;
    }
    let tile = MATRIX_DIM / OPTIMAL_BLOCKS;
    let matrix = BlockMatrix::new(0x2000_0000_0000, blocks * tile, blocks, 4);
    stream_over(
        matrix,
        Durations {
            bmod: micros(BMOD_US),
            fwd: micros(FWD_US),
            bdiv: micros(BDIV_US),
            lu0: micros(LU0_US),
        },
    )
}

/// Generates the LU workload (the eager `collect()` of [`stream`]).
pub fn generate(params: Params) -> Workload {
    stream(params).into_workload()
}

/// Software-optimal granularity (same as TDM's, Table II): 1,496 tasks of
/// ≈424 µs.
pub fn software_optimal() -> Workload {
    generate(Params::default())
}

/// See [`software_optimal`].
pub fn tdm_optimal() -> Workload {
    software_optimal()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::{check_calibration, Benchmark};
    use tdm_runtime::tdg::TaskGraph;

    #[test]
    fn task_count_close_to_table2() {
        assert_eq!(task_count(16), 1_496);
        let w = software_optimal();
        // Table II reports 1,512 for the sparse input; the dense structure is
        // within ~1 %.
        check_calibration(&w, Benchmark::Lu.table2_software(), 0.02, 0.03).unwrap();
    }

    #[test]
    fn panel_factorization_is_on_the_critical_path() {
        let w = generate(Params { blocks: 4 });
        let graph = TaskGraph::build(&w);
        // Each panel's lu0 depends transitively on the previous panel's bmod
        // wave, so the critical path grows with the block count.
        assert!(graph.critical_path_len() >= 2 * 4 - 1);
    }

    #[test]
    fn kernel_mix_matches_closed_form() {
        let w = generate(Params { blocks: 8 });
        let count = |k: &str| w.tasks.iter().filter(|t| t.kind == k).count();
        assert_eq!(count("lu0"), 8);
        assert_eq!(count("fwd"), 28);
        assert_eq!(count("bdiv"), 28);
        assert_eq!(
            count("bmod"),
            (0..8).map(|k| (7 - k) * (7 - k)).sum::<usize>()
        );
    }

    #[test]
    fn block_size_is_64kb_at_optimal_granularity() {
        let w = software_optimal();
        assert_eq!(w.tasks[0].deps[0].size, 128 * 128 * 4);
    }

    #[test]
    fn granularity_sweep_preserves_total_work() {
        let fine = generate(Params { blocks: 32 });
        let coarse = generate(Params { blocks: 8 });
        let ratio = coarse.total_work().as_f64() / fine.total_work().as_f64();
        assert!((0.7..1.4).contains(&ratio), "work ratio {ratio}");
    }
}
