//! Tiled QR factorization (communication-avoiding / tile Householder QR).
//!
//! QR is one of the two benchmarks where TDM's lower runtime overhead makes a
//! finer granularity profitable (Table II): the software runtime is fastest
//! with 16×16 blocks (1,496 tasks of ≈997 µs) while TDM is fastest with
//! 32×32 blocks (11,440 tasks of ≈96 µs).

use tdm_runtime::task::{DependenceSpec, TaskSpec, Workload};

use crate::dense::{scale_duration, BlockMatrix};
use crate::spec::micros;
use crate::stream::TaskStream;

/// Matrix dimension evaluated in the paper.
pub const MATRIX_DIM: usize = 1024;
/// Software-optimal blocks per dimension.
pub const SOFTWARE_BLOCKS: usize = 16;
/// TDM-optimal blocks per dimension.
pub const TDM_BLOCKS: usize = 32;

/// Per-kernel durations (µs) for the software-optimal granularity, chosen so
/// the average matches Table II's 997 µs.
const SW_TSMQR_US: f64 = 1_020.0;
const SW_UNMQR_US: f64 = 900.0;
const SW_TSQRT_US: f64 = 950.0;
const SW_GEQRT_US: f64 = 600.0;

/// Per-kernel durations (µs) for the TDM-optimal granularity, matching the
/// 96 µs average of Table II. (Scaling the software durations by the cubic
/// work ratio would give ≈126 µs; the paper's finer tiles run
/// disproportionally faster thanks to better cache behaviour, so the TDM
/// point is calibrated directly.)
const TDM_TSMQR_US: f64 = 98.0;
const TDM_UNMQR_US: f64 = 85.0;
const TDM_TSQRT_US: f64 = 90.0;
const TDM_GEQRT_US: f64 = 60.0;

/// Generation parameters.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Params {
    /// Blocks per dimension (Figure 6 granularity knob).
    pub blocks: usize,
}

impl Default for Params {
    fn default() -> Self {
        Params {
            blocks: SOFTWARE_BLOCKS,
        }
    }
}

/// Number of tasks for a given block count.
pub fn task_count(blocks: usize) -> usize {
    let n = blocks;
    let tsmqr: usize = (0..n).map(|k| (n - 1 - k) * (n - 1 - k)).sum();
    n + n * (n - 1) / 2 + n * (n - 1) / 2 + tsmqr
}

fn kernel_durations(blocks: usize) -> (f64, f64, f64, f64) {
    match blocks {
        SOFTWARE_BLOCKS => (SW_TSMQR_US, SW_UNMQR_US, SW_TSQRT_US, SW_GEQRT_US),
        TDM_BLOCKS => (TDM_TSMQR_US, TDM_UNMQR_US, TDM_TSQRT_US, TDM_GEQRT_US),
        other => (
            scale_duration(SW_TSMQR_US, SOFTWARE_BLOCKS, other),
            scale_duration(SW_UNMQR_US, SOFTWARE_BLOCKS, other),
            scale_duration(SW_TSQRT_US, SOFTWARE_BLOCKS, other),
            scale_duration(SW_GEQRT_US, SOFTWARE_BLOCKS, other),
        ),
    }
}

/// Lazily generates the tile-QR task sequence over `matrix` with the given
/// per-kernel durations (µs).
fn stream_over(matrix: BlockMatrix, durations_us: (f64, f64, f64, f64)) -> TaskStream {
    let blocks = matrix.blocks;
    let bytes = matrix.block_bytes();
    let (tsmqr_us, unmqr_us, tsqrt_us, geqrt_us) = durations_us;
    let tsmqr = micros(tsmqr_us);
    let unmqr = micros(unmqr_us);
    let tsqrt = micros(tsqrt_us);
    let geqrt = micros(geqrt_us);

    let iter = (0..blocks).flat_map(move |k| {
        let panel = std::iter::once(TaskSpec::new(
            "geqrt",
            geqrt,
            vec![DependenceSpec::inout(matrix.block(k, k), bytes)],
        ));
        let row_updates = ((k + 1)..blocks).map(move |j| {
            TaskSpec::new(
                "unmqr",
                unmqr,
                vec![
                    DependenceSpec::input(matrix.block(k, k), bytes),
                    DependenceSpec::inout(matrix.block(k, j), bytes),
                ],
            )
        });
        let column = ((k + 1)..blocks).flat_map(move |i| {
            std::iter::once(TaskSpec::new(
                "tsqrt",
                tsqrt,
                vec![
                    DependenceSpec::inout(matrix.block(k, k), bytes),
                    DependenceSpec::inout(matrix.block(i, k), bytes),
                ],
            ))
            .chain(((k + 1)..blocks).map(move |j| {
                TaskSpec::new(
                    "tsmqr",
                    tsmqr,
                    vec![
                        DependenceSpec::input(matrix.block(i, k), bytes),
                        DependenceSpec::inout(matrix.block(k, j), bytes),
                        DependenceSpec::inout(matrix.block(i, j), bytes),
                    ],
                )
            }))
        });
        panel.chain(row_updates).chain(column)
    });
    TaskStream::new("QR", task_count(blocks), iter).with_locality_benefit(0.04)
}

/// Lazily generates the QR workload, one task at a time.
pub fn stream(params: Params) -> TaskStream {
    let blocks = params.blocks;
    let matrix = BlockMatrix::new(0x3000_0000_0000, MATRIX_DIM, blocks, 4);
    stream_over(matrix, kernel_durations(blocks))
}

/// A scaled-up QR stream with at least `target_tasks` tasks: a bigger matrix
/// factorised at the TDM-optimal 32×32-element tile size.
pub fn stream_scaled(target_tasks: usize) -> TaskStream {
    let mut blocks = TDM_BLOCKS;
    while task_count(blocks) < target_tasks {
        blocks += 1;
    }
    let tile = MATRIX_DIM / TDM_BLOCKS;
    let matrix = BlockMatrix::new(0x3000_0000_0000, blocks * tile, blocks, 4);
    stream_over(
        matrix,
        (TDM_TSMQR_US, TDM_UNMQR_US, TDM_TSQRT_US, TDM_GEQRT_US),
    )
}

/// Generates the QR workload (the eager `collect()` of [`stream`]).
pub fn generate(params: Params) -> Workload {
    stream(params).into_workload()
}

/// Software-optimal granularity: 1,496 tasks of ≈997 µs.
pub fn software_optimal() -> Workload {
    generate(Params {
        blocks: SOFTWARE_BLOCKS,
    })
}

/// TDM-optimal granularity: 11,440 tasks of ≈96 µs.
pub fn tdm_optimal() -> Workload {
    generate(Params { blocks: TDM_BLOCKS })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::{check_calibration, Benchmark};
    use tdm_runtime::tdg::TaskGraph;

    #[test]
    fn task_counts_match_table2_exactly() {
        assert_eq!(task_count(SOFTWARE_BLOCKS), 1_496);
        assert_eq!(task_count(TDM_BLOCKS), 11_440);
    }

    #[test]
    fn software_point_matches_calibration() {
        let w = software_optimal();
        check_calibration(&w, Benchmark::Qr.table2_software(), 0.02, 0.03).unwrap();
    }

    #[test]
    fn tdm_point_matches_calibration() {
        let w = tdm_optimal();
        check_calibration(&w, Benchmark::Qr.table2_tdm(), 0.02, 0.03).unwrap();
    }

    #[test]
    fn tsqrt_chain_serializes_the_panel() {
        let w = generate(Params { blocks: 4 });
        let graph = TaskGraph::build(&w);
        // Within a panel, every tsqrt touches the diagonal block (inout), so
        // the panel factorization is a chain; across panels the trailing
        // update connects them. The critical path is therefore at least the
        // number of tsqrt+geqrt tasks of the first panel plus one per later
        // panel.
        assert!(graph.critical_path_len() >= 4 + 3);
    }

    #[test]
    fn finer_granularity_means_more_shorter_tasks() {
        let sw = software_optimal();
        let tdm = tdm_optimal();
        assert!(tdm.len() > 7 * sw.len());
        assert!(tdm.average_duration() < sw.average_duration());
    }

    #[test]
    fn kernel_mix_matches_closed_form() {
        let w = generate(Params { blocks: 8 });
        let count = |k: &str| w.tasks.iter().filter(|t| t.kind == k).count();
        assert_eq!(count("geqrt"), 8);
        assert_eq!(count("unmqr"), 28);
        assert_eq!(count("tsqrt"), 28);
        assert_eq!(
            count("tsmqr"),
            (0..8).map(|k| (7 - k) * (7 - k)).sum::<usize>()
        );
        assert_eq!(w.len(), task_count(8));
    }
}
