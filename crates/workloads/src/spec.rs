//! Benchmark catalogue and Table II calibration data.
//!
//! The paper evaluates five PARSECSs benchmarks (Blackscholes, Dedup, Ferret,
//! Fluidanimate, Streamcluster) and four HPC kernels (Cholesky, Histogram,
//! LU, QR). Table II lists, for each, the number of tasks and the average
//! task duration at the optimal granularity for the software runtime and for
//! TDM. This module provides the [`Benchmark`] enum used by every harness to
//! iterate over the suite, plus the calibration targets the generators are
//! validated against.

use serde::{Deserialize, Serialize};
use tdm_runtime::task::Workload;

use crate::stream::TaskStream;

/// The nine benchmarks of the paper's evaluation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Benchmark {
    /// PARSECSs Blackscholes: option pricing, fork-join chains.
    Blackscholes,
    /// Dense Cholesky factorization of a 2048×2048 matrix, tiled.
    Cholesky,
    /// PARSECSs Dedup: compression pipeline with serialized I/O.
    Dedup,
    /// PARSECSs Ferret: similarity-search pipeline.
    Ferret,
    /// PARSECSs Fluidanimate: 3D stencil over volume partitions.
    Fluidanimate,
    /// Cumulative histogram of a 4096×4096 image.
    Histogram,
    /// Sparse LU decomposition of a 2048×2048 matrix, tiled.
    Lu,
    /// Dense QR factorization of a 1024×1024 matrix, tiled.
    Qr,
    /// PARSECSs Streamcluster: online clustering, fork-join phases.
    Streamcluster,
}

impl Benchmark {
    /// All benchmarks in the order the paper's figures list them.
    pub const ALL: [Benchmark; 9] = [
        Benchmark::Blackscholes,
        Benchmark::Cholesky,
        Benchmark::Dedup,
        Benchmark::Ferret,
        Benchmark::Fluidanimate,
        Benchmark::Histogram,
        Benchmark::Lu,
        Benchmark::Qr,
        Benchmark::Streamcluster,
    ];

    /// Full lowercase name.
    pub fn name(self) -> &'static str {
        match self {
            Benchmark::Blackscholes => "blackscholes",
            Benchmark::Cholesky => "cholesky",
            Benchmark::Dedup => "dedup",
            Benchmark::Ferret => "ferret",
            Benchmark::Fluidanimate => "fluidanimate",
            Benchmark::Histogram => "histogram",
            Benchmark::Lu => "LU",
            Benchmark::Qr => "QR",
            Benchmark::Streamcluster => "streamcluster",
        }
    }

    /// Three-letter abbreviation used on the figures' X axes.
    pub fn abbrev(self) -> &'static str {
        match self {
            Benchmark::Blackscholes => "bla",
            Benchmark::Cholesky => "cho",
            Benchmark::Dedup => "ded",
            Benchmark::Ferret => "fer",
            Benchmark::Fluidanimate => "flu",
            Benchmark::Histogram => "hist",
            Benchmark::Lu => "LU",
            Benchmark::Qr => "QR",
            Benchmark::Streamcluster => "str",
        }
    }

    /// Table II calibration targets: `(tasks, avg duration in µs)` at the
    /// optimal granularity for the software runtime.
    pub fn table2_software(self) -> (usize, f64) {
        match self {
            Benchmark::Blackscholes => (3_300, 1_770.0),
            Benchmark::Cholesky => (5_984, 183.0),
            Benchmark::Dedup => (244, 27_748.0),
            Benchmark::Ferret => (1_536, 7_667.0),
            Benchmark::Fluidanimate => (2_560, 1_804.0),
            Benchmark::Histogram => (512, 3_824.0),
            Benchmark::Lu => (1_512, 424.0),
            Benchmark::Qr => (1_496, 997.0),
            Benchmark::Streamcluster => (42_115, 376.0),
        }
    }

    /// Table II calibration targets at the optimal granularity for TDM
    /// (differs from the software optimum only for Blackscholes and QR, where
    /// the reduced runtime overhead makes finer tasks worthwhile).
    pub fn table2_tdm(self) -> (usize, f64) {
        match self {
            Benchmark::Blackscholes => (6_500, 823.0),
            Benchmark::Qr => (11_440, 96.0),
            other => other.table2_software(),
        }
    }

    /// Generates the workload at the software-optimal granularity.
    pub fn software_workload(self) -> Workload {
        self.software_stream().into_workload()
    }

    /// Generates the workload at the TDM-optimal granularity.
    pub fn tdm_workload(self) -> Workload {
        self.tdm_stream().into_workload()
    }

    /// The lazy task stream at the software-optimal granularity —
    /// task-for-task identical to [`Benchmark::software_workload`].
    pub fn software_stream(self) -> TaskStream {
        match self {
            Benchmark::Blackscholes => {
                crate::blackscholes::stream(crate::blackscholes::Params::software())
            }
            Benchmark::Cholesky => crate::cholesky::stream(crate::cholesky::Params::default()),
            Benchmark::Dedup => crate::dedup::stream(),
            Benchmark::Ferret => crate::ferret::stream(),
            Benchmark::Fluidanimate => {
                crate::fluidanimate::stream(crate::fluidanimate::Params::default())
            }
            Benchmark::Histogram => crate::histogram::stream(crate::histogram::Params::default()),
            Benchmark::Lu => crate::lu::stream(crate::lu::Params::default()),
            Benchmark::Qr => crate::qr::stream(crate::qr::Params::default()),
            Benchmark::Streamcluster => {
                crate::streamcluster::stream(crate::streamcluster::Params::default())
            }
        }
    }

    /// The lazy task stream at the TDM-optimal granularity — task-for-task
    /// identical to [`Benchmark::tdm_workload`].
    pub fn tdm_stream(self) -> TaskStream {
        match self {
            Benchmark::Blackscholes => {
                crate::blackscholes::stream(crate::blackscholes::Params::tdm())
            }
            Benchmark::Qr => crate::qr::stream(crate::qr::Params {
                blocks: crate::qr::TDM_BLOCKS,
            }),
            other => other.software_stream(),
        }
    }

    /// A scaled-up lazy stream with **at least** `target_tasks` tasks,
    /// growing the benchmark's natural scaling axis (bigger matrix, longer
    /// input stream, more timesteps…) while keeping per-task granularity at
    /// the Table II optimum. Feed it to
    /// [`simulate_stream`](tdm_runtime::exec::simulate_stream) with a finite
    /// [`window`](tdm_runtime::exec::ExecConfig::window) to run
    /// million-task regions in memory bounded by the window.
    pub fn scaled_stream(self, target_tasks: usize) -> TaskStream {
        match self {
            Benchmark::Blackscholes => crate::blackscholes::stream_scaled(target_tasks),
            Benchmark::Cholesky => crate::cholesky::stream_scaled(target_tasks),
            Benchmark::Dedup => crate::dedup::stream_scaled(target_tasks),
            Benchmark::Ferret => crate::ferret::stream_scaled(target_tasks),
            Benchmark::Fluidanimate => crate::fluidanimate::stream_scaled(target_tasks),
            Benchmark::Histogram => crate::histogram::stream_scaled(target_tasks),
            Benchmark::Lu => crate::lu::stream_scaled(target_tasks),
            Benchmark::Qr => crate::qr::stream_scaled(target_tasks),
            Benchmark::Streamcluster => crate::streamcluster::stream_scaled(target_tasks),
        }
    }
}

impl std::fmt::Display for Benchmark {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// Converts a duration in microseconds to cycles at the paper's 2 GHz clock.
pub fn micros(us: f64) -> tdm_sim::clock::Cycle {
    tdm_sim::clock::Frequency::ghz(2.0).cycles_from_micros(us)
}

/// Checks that a generated workload matches a `(tasks, avg µs)` calibration
/// target within the given relative tolerances. Returns a description of the
/// first mismatch.
pub fn check_calibration(
    workload: &Workload,
    target: (usize, f64),
    task_tolerance: f64,
    duration_tolerance: f64,
) -> Result<(), String> {
    let (target_tasks, target_us) = target;
    let tasks = workload.len();
    let task_err = (tasks as f64 - target_tasks as f64).abs() / target_tasks as f64;
    if task_err > task_tolerance {
        return Err(format!(
            "{}: {} tasks generated, Table II lists {} (error {:.1}%)",
            workload.name,
            tasks,
            target_tasks,
            task_err * 100.0
        ));
    }
    let avg_us = workload.average_duration().as_f64() / 2000.0;
    let dur_err = (avg_us - target_us).abs() / target_us;
    if dur_err > duration_tolerance {
        return Err(format!(
            "{}: average duration {:.0} µs, Table II lists {:.0} µs (error {:.1}%)",
            workload.name,
            avg_us,
            target_us,
            dur_err * 100.0
        ));
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn nine_benchmarks_with_unique_names() {
        assert_eq!(Benchmark::ALL.len(), 9);
        let mut names: Vec<_> = Benchmark::ALL.iter().map(|b| b.name()).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), 9);
        let mut abbrevs: Vec<_> = Benchmark::ALL.iter().map(|b| b.abbrev()).collect();
        abbrevs.sort_unstable();
        abbrevs.dedup();
        assert_eq!(abbrevs.len(), 9);
    }

    #[test]
    fn table2_matches_paper_values() {
        assert_eq!(Benchmark::Cholesky.table2_software(), (5_984, 183.0));
        assert_eq!(Benchmark::Streamcluster.table2_software(), (42_115, 376.0));
        assert_eq!(Benchmark::Qr.table2_tdm(), (11_440, 96.0));
        assert_eq!(Benchmark::Blackscholes.table2_tdm(), (6_500, 823.0));
        // Benchmarks other than bla and QR use the same granularity for both.
        assert_eq!(
            Benchmark::Dedup.table2_tdm(),
            Benchmark::Dedup.table2_software()
        );
    }

    #[test]
    fn average_durations_table2() {
        // Weighted averages reported in Table II: software 4976 µs, TDM 4771 µs.
        let avg_sw: f64 = Benchmark::ALL
            .iter()
            .map(|b| b.table2_software().1)
            .sum::<f64>()
            / 9.0;
        assert!((avg_sw - 4976.0).abs() / 4976.0 < 0.02, "got {avg_sw}");
        let avg_tdm: f64 = Benchmark::ALL.iter().map(|b| b.table2_tdm().1).sum::<f64>() / 9.0;
        assert!((avg_tdm - 4771.0).abs() / 4771.0 < 0.02, "got {avg_tdm}");
    }

    #[test]
    fn micros_helper_uses_2ghz() {
        assert_eq!(micros(1.0).raw(), 2000);
    }

    #[test]
    fn check_calibration_detects_mismatches() {
        let w = Workload::new(
            "fake",
            vec![tdm_runtime::task::TaskSpec::new("t", micros(100.0), vec![])],
        );
        assert!(check_calibration(&w, (1, 100.0), 0.05, 0.05).is_ok());
        assert!(check_calibration(&w, (10, 100.0), 0.05, 0.05).is_err());
        assert!(check_calibration(&w, (1, 500.0), 0.05, 0.05).is_err());
    }
}
