//! Lazy task streams: the pull-based form of every benchmark generator.
//!
//! A [`TaskStream`] is a named, length-known iterator of
//! [`TaskSpec`]s carrying the workload-level
//! modelling knobs (locality benefit, duration jitter). Every Table II
//! generator produces one (e.g. [`crate::cholesky::stream`]); the eager
//! `generate` entry points are thin [`TaskStream::into_workload`] wrappers
//! kept for compatibility, so the two forms are task-for-task identical by
//! construction.
//!
//! `TaskStream` implements [`TaskSource`], the driver-side trait, so it can
//! be fed straight to
//! [`simulate_stream`](tdm_runtime::exec::simulate_stream): tasks are then
//! generated on demand while the windowed master consumes them, and the full
//! task list never materialises — the property that lets the scaled-up
//! generators ([`crate::Benchmark::scaled_stream`]) drive million-task runs
//! in memory bounded by the window.
//!
//! Streams are deterministic: a freshly built stream always yields the same
//! task sequence (the Table II generators are closed-form loop nests; a
//! generator needing random content must carry its own seeded
//! [`SplitMix64`](tdm_sim::rng::SplitMix64) state in its iterator).
//!
//! # Example
//!
//! ```
//! use tdm_runtime::stream::TaskSource;
//! use tdm_workloads::cholesky;
//!
//! let mut stream = cholesky::stream(cholesky::Params { blocks: 8 });
//! assert_eq!(stream.len(), cholesky::task_count(8));
//! let first = stream.next_task().unwrap();
//! assert_eq!(first.kind, "spotrf");
//! // Collecting the rest gives exactly what the eager generator builds.
//! let eager = cholesky::generate(cholesky::Params { blocks: 8 });
//! assert_eq!(eager.tasks[0], first);
//! ```

use tdm_runtime::stream::TaskSource;
use tdm_runtime::task::{TaskSpec, Workload};

/// A lazily generated workload: name, exact task count, modelling knobs and
/// the boxed generator iterator.
///
/// The iterator is boxed with a `Send` bound, making the whole stream `Send`
/// (checked at compile time below): the parallel sweep runner builds streams
/// on — or hands them to — worker threads. Generators are closed-form loop
/// nests over plain data, so the bound costs them nothing.
pub struct TaskStream {
    name: String,
    remaining: usize,
    /// Tasks produced so far — the checkpoint cursor
    /// ([`TaskSource::checkpoint_cursor`]): a restored run rebuilds the
    /// stream and fast-forwards it here instead of storing generated tasks.
    produced: u64,
    locality_benefit: f64,
    duration_jitter: f64,
    iter: Box<dyn Iterator<Item = TaskSpec> + Send>,
}

// Compile-time half of the `TaskSource: Send` contract: if a generator ever
// captures a non-`Send` handle, the error points here instead of at a
// `thread::scope` call three crates up.
const _: () = {
    const fn assert_send<T: Send>() {}
    assert_send::<TaskStream>();
};

impl std::fmt::Debug for TaskStream {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("TaskStream")
            .field("name", &self.name)
            .field("remaining", &self.remaining)
            .field("locality_benefit", &self.locality_benefit)
            .field("duration_jitter", &self.duration_jitter)
            .finish_non_exhaustive()
    }
}

impl TaskStream {
    /// Wraps a generator iterator that will produce exactly `len` tasks.
    ///
    /// The generators state their closed-form task counts here; the count is
    /// asserted during consumption (in debug builds) and by the calibration
    /// tests, which collect and measure every stream.
    pub fn new(
        name: impl Into<String>,
        len: usize,
        iter: impl Iterator<Item = TaskSpec> + Send + 'static,
    ) -> Self {
        TaskStream {
            name: name.into(),
            remaining: len,
            produced: 0,
            locality_benefit: 0.0,
            duration_jitter: tdm_runtime::task::DEFAULT_DURATION_JITTER,
            iter: Box::new(iter),
        }
    }

    /// Sets the locality-benefit knob (see `Workload::locality_benefit`).
    pub fn with_locality_benefit(mut self, benefit: f64) -> Self {
        self.locality_benefit = benefit;
        self
    }

    /// Sets the duration-jitter knob (see `Workload::duration_jitter`).
    pub fn with_duration_jitter(mut self, jitter: f64) -> Self {
        self.duration_jitter = jitter;
        self
    }

    /// Tasks still to be produced.
    pub fn len(&self) -> usize {
        self.remaining
    }

    /// True if the stream will produce no further tasks.
    pub fn is_empty(&self) -> bool {
        self.remaining == 0
    }

    /// Drains the stream into an eager [`Workload`] — the compatibility path
    /// behind every generator's `generate` / `software_optimal` /
    /// `tdm_optimal` function.
    ///
    /// # Panics
    ///
    /// Panics if the generator produced a different number of tasks than the
    /// stream declared.
    pub fn into_workload(mut self) -> Workload {
        let declared = self.remaining;
        let mut tasks = Vec::with_capacity(declared);
        while let Some(spec) = self.next_task() {
            tasks.push(spec);
        }
        assert_eq!(
            tasks.len(),
            declared,
            "{}: generator produced {} tasks but declared {declared}",
            self.name,
            tasks.len()
        );
        let mut workload = Workload::new(self.name, tasks);
        workload.locality_benefit = self.locality_benefit;
        workload.duration_jitter = self.duration_jitter;
        workload
    }
}

impl TaskSource for TaskStream {
    fn name(&self) -> &str {
        &self.name
    }

    fn next_task(&mut self) -> Option<TaskSpec> {
        let spec = self.iter.next();
        match &spec {
            Some(_) => {
                debug_assert!(
                    self.remaining > 0,
                    "{}: more tasks than declared",
                    self.name
                );
                self.remaining = self.remaining.saturating_sub(1);
                self.produced += 1;
            }
            None => debug_assert_eq!(
                self.remaining, 0,
                "{}: generator ended early ({} declared tasks missing)",
                self.name, self.remaining
            ),
        }
        spec
    }

    fn len_hint(&self) -> Option<usize> {
        Some(self.remaining)
    }

    fn locality_benefit(&self) -> f64 {
        self.locality_benefit
    }

    fn duration_jitter(&self) -> f64 {
        self.duration_jitter
    }

    fn checkpoint_cursor(&self) -> Option<u64> {
        Some(self.produced)
    }

    // The default pull-and-discard fast-forward is already correct for a
    // deterministic generator; overriding it keeps the declared-length
    // bookkeeping (`remaining`/`produced`) exact without relying on the
    // trait's loop semantics.
    fn resume_at(&mut self, cursor: u64) {
        debug_assert_eq!(self.produced, 0, "resume_at on a consumed stream");
        for _ in 0..cursor {
            if self.next_task().is_none() {
                break;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tdm_runtime::task::DependenceSpec;
    use tdm_sim::clock::Cycle;

    fn three_tasks() -> impl Iterator<Item = TaskSpec> {
        (0..3).map(|i| {
            TaskSpec::new(
                "t",
                Cycle::new(1000 + i),
                vec![DependenceSpec::inout(0x1000, 64)],
            )
        })
    }

    #[test]
    fn stream_reports_remaining_and_knobs() {
        let mut s = TaskStream::new("s", 3, three_tasks())
            .with_locality_benefit(0.05)
            .with_duration_jitter(0.0);
        assert_eq!(s.len(), 3);
        assert!(!s.is_empty());
        assert_eq!(s.locality_benefit(), 0.05);
        assert_eq!(s.duration_jitter(), 0.0);
        assert!(s.next_task().is_some());
        assert_eq!(s.len(), 2);
        assert_eq!(s.len_hint(), Some(2));
    }

    #[test]
    fn into_workload_preserves_everything() {
        let w = TaskStream::new("s", 3, three_tasks())
            .with_locality_benefit(0.05)
            .into_workload();
        assert_eq!(w.name, "s");
        assert_eq!(w.len(), 3);
        assert_eq!(w.locality_benefit, 0.05);
        assert_eq!(w.duration_jitter, 0.02);
        assert_eq!(w.tasks[2].duration, Cycle::new(1002));
    }

    #[test]
    #[should_panic(expected = "declared")]
    fn wrong_declared_length_panics_on_collect() {
        let _ = TaskStream::new("s", 5, three_tasks()).into_workload();
    }

    #[test]
    fn checkpoint_cursor_resumes_identically() {
        let mut original = TaskStream::new("s", 3, three_tasks());
        original.next_task();
        original.next_task();
        let cursor = original.checkpoint_cursor().unwrap();
        assert_eq!(cursor, 2);

        let mut resumed = TaskStream::new("s", 3, three_tasks());
        resumed.resume_at(cursor);
        assert_eq!(resumed.len_hint(), original.len_hint());
        assert_eq!(resumed.next_task(), original.next_task());
        assert_eq!(resumed.next_task(), None);
    }
}
