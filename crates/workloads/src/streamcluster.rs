//! Streamcluster (PARSECSs): online clustering in fork-join phases.
//!
//! Every phase evaluates candidate centers over all points in parallel (one
//! task per batch of points, all reading the shared centers structure) and
//! then a reduction task gathers the per-batch results and updates the
//! centers, acting as a barrier before the next phase. The optimal
//! granularity of Table II corresponds to 100 phases of 420 parallel batches
//! plus one reduction each (42,100 tasks, within 0.04 % of the reported
//! 42,115), with an average duration of ≈376 µs.

use tdm_runtime::task::{DependenceSpec, TaskSpec, Workload};

use crate::spec::micros;
use crate::stream::TaskStream;

/// Parallel batch tasks per phase at the optimal granularity.
pub const OPTIMAL_BATCHES: usize = 420;
/// Number of fork-join phases.
pub const PHASES: usize = 100;

/// Duration of a batch-evaluation task, in microseconds.
const BATCH_US: f64 = 380.0;
/// Duration of a phase-reduction task, in microseconds.
const REDUCE_US: f64 = 100.0;

/// Address of the shared cluster-centers structure.
const CENTERS_ADDR: u64 = 0x9000_0000_0000;
/// Base address of the per-batch result buffers.
const RESULT_BASE: u64 = 0x9100_0000_0000;

/// Generation parameters.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Params {
    /// Parallel batch tasks per phase (Figure 6 sweeps the points per task,
    /// i.e. the inverse of this).
    pub batches: usize,
    /// Number of phases.
    pub phases: usize,
}

impl Default for Params {
    fn default() -> Self {
        Params {
            batches: OPTIMAL_BATCHES,
            phases: PHASES,
        }
    }
}

/// Lazily generates the Streamcluster workload.
pub fn stream(params: Params) -> TaskStream {
    assert!(params.batches > 0 && params.phases > 0);
    let batches = params.batches;
    // Constant total work per phase.
    let batch_us = BATCH_US * OPTIMAL_BATCHES as f64 / batches as f64;
    let result_bytes = 16 * 1024;
    let iter = (0..params.phases).flat_map(move |_phase| {
        let evaluations = (0..batches).map(move |b| {
            TaskSpec::new(
                "evaluate_batch",
                micros(batch_us),
                vec![
                    DependenceSpec::input(CENTERS_ADDR, 64 * 1024),
                    DependenceSpec::output(RESULT_BASE + b as u64 * result_bytes, result_bytes),
                ],
            )
        });
        // The reduction gathers the per-batch results and updates the
        // centers. Ordering with the batches comes from the WAR hazard on
        // the centers structure (every batch reads it, the reduction writes
        // it), so the reduction does not need to name each result buffer —
        // mirroring the real code, where the gather walks a per-phase list.
        let reduce = std::iter::once(TaskSpec::new(
            "reduce_phase",
            micros(REDUCE_US),
            vec![DependenceSpec::inout(CENTERS_ADDR, 64 * 1024)],
        ));
        evaluations.chain(reduce)
    });
    TaskStream::new("streamcluster", params.phases * (params.batches + 1), iter)
}

/// A scaled-up Streamcluster stream with at least `target_tasks` tasks: a
/// longer point stream (more fork-join phases) at the optimal batching.
pub fn stream_scaled(target_tasks: usize) -> TaskStream {
    stream(Params {
        batches: OPTIMAL_BATCHES,
        phases: target_tasks.div_ceil(OPTIMAL_BATCHES + 1).max(1),
    })
}

/// Generates the Streamcluster workload (the eager `collect()` of
/// [`stream`]).
pub fn generate(params: Params) -> Workload {
    stream(params).into_workload()
}

/// Optimal granularity (software and TDM coincide): 42,100 tasks of ≈376 µs.
pub fn software_optimal() -> Workload {
    generate(Params::default())
}

/// See [`software_optimal`].
pub fn tdm_optimal() -> Workload {
    software_optimal()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::{check_calibration, Benchmark};
    use tdm_runtime::task::TaskRef;
    use tdm_runtime::tdg::TaskGraph;

    #[test]
    fn task_count_and_duration_match_table2() {
        let w = software_optimal();
        assert_eq!(w.len(), 42_100);
        check_calibration(&w, Benchmark::Streamcluster.table2_software(), 0.01, 0.02).unwrap();
    }

    #[test]
    fn phases_are_separated_by_reductions() {
        let w = generate(Params {
            batches: 4,
            phases: 3,
        });
        let graph = TaskGraph::build(&w);
        // The reduction of phase 0 (task 4) waits for all 4 batches (WAR on
        // the centers structure they all read).
        let reduce0 = TaskRef(4);
        assert_eq!(graph.predecessors(reduce0).len(), 4);
        // A batch of phase 1 (task 5) waits for the phase-0 reduction
        // (it reads the centers the reduction wrote) and, through the result
        // buffer it overwrites, for the phase-0 batch that wrote it.
        let batch_p1 = TaskRef(5);
        assert!(graph.predecessors(batch_p1).contains(&reduce0));
        // Critical path alternates batch → reduce per phase.
        assert_eq!(graph.critical_path_len(), 2 * 3);
    }

    #[test]
    fn batches_within_a_phase_are_parallel() {
        let w = generate(Params {
            batches: 6,
            phases: 1,
        });
        let graph = TaskGraph::build(&w);
        assert_eq!(graph.roots().len(), 6);
        for b in 0..6 {
            assert_eq!(graph.predecessor_count(TaskRef(b)), 0);
        }
    }

    #[test]
    fn granularity_sweep_preserves_work_per_phase() {
        let fine = generate(Params {
            batches: 1024,
            phases: 2,
        });
        let coarse = generate(Params {
            batches: 64,
            phases: 2,
        });
        let ratio = coarse.total_work().as_f64() / fine.total_work().as_f64();
        assert!((0.9..1.1).contains(&ratio), "work ratio {ratio}");
    }
}
