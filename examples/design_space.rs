//! Mini design-space exploration: how large do the DMU's alias tables need to
//! be for a Cholesky factorization, and what does the dynamic index-bit
//! selection buy? (A reduced version of Figures 7 and 11.)
//!
//! Run with: `cargo run --release --example design_space`

use tdm::prelude::*;
use tdm::workloads::cholesky;

fn main() {
    let workload = cholesky::generate(cholesky::Params { blocks: 16 });
    let config = ExecConfig::default();

    println!("Cholesky 16x16 blocks: {} tasks\n", workload.len());

    // Sweep the TAT/DAT size.
    println!("alias-table size sweep (FIFO scheduler):");
    let ideal = simulate(
        &workload,
        &Backend::Tdm(DmuConfig::ideal()),
        SchedulerKind::Fifo,
        &config,
    );
    for entries in [128usize, 256, 512, 1024, 2048] {
        let dmu = DmuConfig::default().with_alias_sizes(entries, entries);
        let report = simulate(&workload, &Backend::Tdm(dmu), SchedulerKind::Fifo, &config);
        let stalls = report
            .hardware
            .as_ref()
            .map(|h| h.stats.stalls)
            .unwrap_or(0);
        println!(
            "  {entries:>5} entries: perf vs ideal = {:.3}, DMU stalls = {stalls}",
            ideal.makespan().as_f64() / report.makespan().as_f64()
        );
    }

    // Compare static and dynamic DAT index-bit selection.
    println!("\nDAT index-bit selection (occupied sets out of 256):");
    for (label, policy) in [
        ("static bit 0", IndexPolicy::Static { low_bit: 0 }),
        ("static bit 12", IndexPolicy::Static { low_bit: 12 }),
        ("dynamic", IndexPolicy::Dynamic),
    ] {
        let dmu = DmuConfig::default().with_index_policy(policy);
        let report = simulate(&workload, &Backend::Tdm(dmu), SchedulerKind::Fifo, &config);
        let hw = report.hardware.as_ref().unwrap();
        println!(
            "  {label:<14} avg occupied sets = {:>6.1}, stalls = {}",
            hw.dat_average_occupied_sets, hw.stats.stalls
        );
    }
}
