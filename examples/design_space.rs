//! Mini design-space exploration: how large do the DMU's alias tables need to
//! be for a Cholesky factorization, and what does the dynamic index-bit
//! selection buy? (A reduced version of Figures 7 and 11.)
//!
//! All nine DMU configurations are declared as one [`SweepGrid`] and executed
//! in parallel across host threads by [`run_sweep`]; each point streams the
//! Cholesky generator through the windowed master (`simulate_stream`) instead
//! of materialising the task list. Sweep results are bit-identical to the
//! old serial, eagerly-collected harness — same printed numbers — because
//! streaming-vs-eager equivalence and sweep thread-count invariance are both
//! pinned by the conformance suite.
//!
//! Run with: `cargo run --release --example design_space`

use tdm::prelude::*;
use tdm::workloads::cholesky;
use tdm_bench::default_threads;
use tdm_bench::sweep::{run_sweep, BackendSpec, SweepGrid, WorkloadSpec};

fn main() {
    let params = cholesky::Params { blocks: 16 };
    let tasks = cholesky::stream(params).len();

    // One backend-axis entry per DMU configuration under study.
    let mut backends = vec![BackendSpec::labelled(
        "ideal",
        Backend::Tdm(DmuConfig::ideal()),
    )];
    let sizes = [128usize, 256, 512, 1024, 2048];
    for entries in sizes {
        backends.push(BackendSpec::labelled(
            format!("alias-{entries}"),
            Backend::Tdm(DmuConfig::default().with_alias_sizes(entries, entries)),
        ));
    }
    let policies = [
        ("static bit 0", IndexPolicy::Static { low_bit: 0 }),
        ("static bit 12", IndexPolicy::Static { low_bit: 12 }),
        ("dynamic", IndexPolicy::Dynamic),
    ];
    for (label, policy) in policies {
        backends.push(BackendSpec::labelled(
            label,
            Backend::Tdm(DmuConfig::default().with_index_policy(policy)),
        ));
    }

    let grid = SweepGrid::new()
        .with_workloads(vec![WorkloadSpec::new("cholesky-16", move || {
            cholesky::stream(params)
        })])
        .with_backends(backends);

    let threads = default_threads(1);
    let results = run_sweep(&grid, threads);

    println!(
        "Cholesky 16x16 blocks: {tasks} tasks ({} sweep points across {threads} host thread(s))\n",
        grid.len()
    );

    // Results arrive in backend-axis order: ideal, the 5 sizes, the 3 policies.
    let ideal = &results[0];
    println!("alias-table size sweep (FIFO scheduler):");
    for (i, &entries) in sizes.iter().enumerate() {
        let report = &results[1 + i];
        println!(
            "  {entries:>5} entries: perf vs ideal = {:.3}, DMU stalls = {}",
            ideal.makespan_cycles() as f64 / report.makespan_cycles() as f64,
            report.dmu_stalls()
        );
    }

    println!("\nDAT index-bit selection (occupied sets out of 256):");
    for (i, (label, _)) in policies.iter().enumerate() {
        let result = &results[1 + sizes.len() + i];
        let hw = result
            .report
            .hardware
            .as_ref()
            .expect("TDM points have hardware reports");
        println!(
            "  {label:<14} avg occupied sets = {:>6.1}, stalls = {}",
            hw.dat_average_occupied_sets, hw.stats.stalls
        );
    }
}
