//! Drive the DMU directly through its ISA-level interface and watch how it
//! tracks a small task graph — useful to understand Algorithms 1 and 2 of the
//! paper and the cost (SRAM accesses) of each operation.
//!
//! Run with: `cargo run --release --example dmu_microscope`

use tdm::core::isa::{execute, TdmInstruction, TdmResponse};
use tdm::prelude::*;

fn main() {
    let mut dmu = Dmu::new(DmuConfig::default());
    let latency = DmuConfig::default().access_latency;

    // A producer writes a 4 KB block; two consumers read it; a final writer
    // overwrites it (WAR on both consumers).
    let producer = DescriptorAddr(0x1000);
    let consumer_a = DescriptorAddr(0x2000);
    let consumer_b = DescriptorAddr(0x3000);
    let writer = DescriptorAddr(0x4000);
    let data = DepAddr(0xA000_0000);

    let program = [
        TdmInstruction::CreateTask {
            descriptor: producer,
        },
        TdmInstruction::AddDependence {
            descriptor: producer,
            address: data,
            size: 4096,
            direction: DepDirection::Out,
        },
        TdmInstruction::SubmitTask {
            descriptor: producer,
        },
        TdmInstruction::CreateTask {
            descriptor: consumer_a,
        },
        TdmInstruction::AddDependence {
            descriptor: consumer_a,
            address: data,
            size: 4096,
            direction: DepDirection::In,
        },
        TdmInstruction::SubmitTask {
            descriptor: consumer_a,
        },
        TdmInstruction::CreateTask {
            descriptor: consumer_b,
        },
        TdmInstruction::AddDependence {
            descriptor: consumer_b,
            address: data,
            size: 4096,
            direction: DepDirection::In,
        },
        TdmInstruction::SubmitTask {
            descriptor: consumer_b,
        },
        TdmInstruction::CreateTask { descriptor: writer },
        TdmInstruction::AddDependence {
            descriptor: writer,
            address: data,
            size: 4096,
            direction: DepDirection::Out,
        },
        TdmInstruction::SubmitTask { descriptor: writer },
    ];

    println!("-- task creation phase --");
    for instr in program {
        let result = execute(&mut dmu, instr).expect("the default DMU never fills here");
        println!(
            "{:<55} accesses: {:<30} ({} cycles)",
            instr.to_string(),
            result.accesses.to_string(),
            result.cost(latency).raw()
        );
    }

    println!("\n-- execution phase --");
    loop {
        let ready = execute(&mut dmu, TdmInstruction::GetReadyTask).unwrap();
        let TdmResponse::Ready(slot) = ready.value else {
            unreachable!()
        };
        let Some(task) = slot else {
            if dmu.is_drained() {
                break;
            }
            // Nothing ready right now (should not happen in this linear walk).
            continue;
        };
        println!(
            "get_ready_task -> {} ({} successors)",
            task.descriptor, task.num_successors
        );
        let finish = execute(
            &mut dmu,
            TdmInstruction::FinishTask {
                descriptor: task.descriptor,
            },
        )
        .unwrap();
        println!(
            "finish_task({})  accesses: {} ({} cycles)",
            task.descriptor,
            finish.accesses,
            finish.cost(latency).raw()
        );
    }
    println!("\nDMU drained: {}", dmu.is_drained());
    let stats = dmu.stats();
    println!(
        "ops: {} creates, {} add_dependences, {} finishes, {} get_ready; {} SRAM accesses total",
        stats.creates,
        stats.add_dependences,
        stats.finishes,
        stats.get_readies,
        stats.total_accesses
    );
}
