//! Quickstart: build a tiny task graph by hand, run it on the software
//! runtime and on TDM, and compare the outcome.
//!
//! Run with: `cargo run --release --example quickstart`

use tdm::prelude::*;

fn main() {
    // A small blocked computation: 8 producers each write one block, then 8
    // consumers read a pair of blocks and write a result, and a final task
    // reduces all results.
    let block = |i: u64| 0x1000_0000 + i * 0x1_0000;
    let result = |i: u64| 0x2000_0000 + i * 0x1_0000;
    let mut tasks = Vec::new();
    for i in 0..8u64 {
        tasks.push(TaskSpec::new(
            "produce",
            Cycle::new(200_000), // 100 µs at 2 GHz
            vec![DependenceSpec::output(block(i), 0x1_0000)],
        ));
    }
    for i in 0..8u64 {
        tasks.push(TaskSpec::new(
            "combine",
            Cycle::new(300_000),
            vec![
                DependenceSpec::input(block(i), 0x1_0000),
                DependenceSpec::input(block((i + 1) % 8), 0x1_0000),
                DependenceSpec::output(result(i), 0x1_0000),
            ],
        ));
    }
    let reduce_deps = (0..8u64)
        .map(|i| DependenceSpec::input(result(i), 0x1_0000))
        .collect();
    tasks.push(TaskSpec::new("reduce", Cycle::new(100_000), reduce_deps));
    let workload = Workload::new("quickstart", tasks);

    // Inspect the dependence graph the runtime will enforce.
    let graph = TaskGraph::build(&workload);
    println!(
        "workload: {} tasks, {} edges, critical path {} tasks",
        workload.len(),
        graph.edge_count(),
        graph.critical_path_len()
    );

    // Run it on an 8-core chip with the software runtime and with TDM.
    let config = ExecConfig {
        chip: ChipConfig::with_cores(8),
        ..ExecConfig::default()
    };
    for backend in [Backend::Software, Backend::tdm_default()] {
        let report = simulate(&workload, &backend, SchedulerKind::Fifo, &config);
        println!(
            "{:<10} makespan = {:>9} cycles ({:.1} µs), master DEPS = {:.1}%",
            report.backend,
            report.makespan().raw(),
            report.makespan().as_f64() / 2000.0,
            report.master_deps_fraction() * 100.0
        );
    }
}
