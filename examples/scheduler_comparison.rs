//! Compare the five software scheduling policies on two benchmarks with very
//! different characteristics — the flexibility argument of the paper: with
//! TDM the policy is a software choice, so each application can use the one
//! that suits it.
//!
//! Run with: `cargo run --release --example scheduler_comparison`

use tdm::prelude::*;

fn main() {
    let config = ExecConfig::default();
    let backend = Backend::tdm_default();

    for benchmark in [Benchmark::Cholesky, Benchmark::Dedup] {
        let workload = benchmark.tdm_workload();
        println!(
            "\n{} ({} tasks, avg {:.0} µs):",
            benchmark.name(),
            workload.len(),
            workload.average_duration().as_f64() / 2000.0
        );
        let baseline = simulate(&workload, &backend, SchedulerKind::Fifo, &config);
        for kind in [
            SchedulerKind::Fifo,
            SchedulerKind::Lifo,
            SchedulerKind::Locality,
            SchedulerKind::Successor { threshold: 2 },
            SchedulerKind::Age,
        ] {
            let report = simulate(&workload, &backend, kind, &config);
            println!(
                "  {:<10} makespan {:>8.2} ms  ({:+.1}% vs FIFO)",
                kind.name(),
                report.makespan().as_f64() / 2e6,
                (report.speedup_over(&baseline) - 1.0) * 100.0
            );
        }
    }
    println!(
        "\nCholesky favours the locality-aware policy (reuse of freshly produced
blocks), while Dedup needs the Successor/Age policies to overlap its
serialized I/O chain with compression work — no single hardware-fixed
policy wins both, which is TDM's case for software scheduling."
    );
}
