//! Trace replay: draw an adversarial workload from the grammar, dump it to
//! a `tdmtrace v1` file, replay the file through the streaming driver, and
//! check the replay reproduces the generator's run bit for bit.
//!
//! Run with: `cargo run --release --example trace_replay`

use tdm::prelude::*;
use tdm::runtime::exec::simulate_stream;
use tdm::runtime::trace::{self, TraceSource};
use tdm::workloads::grammar::GrammarSpec;

fn main() {
    // A seeded grammar point: same seed, same workload, forever.
    let spec = GrammarSpec::draw(42);
    println!(
        "drew {}: {} ({} tasks over {} phases)",
        spec.name(),
        spec.encode(),
        spec.task_count(),
        spec.shapes.len()
    );

    // Dump the generated task stream to a trace file.
    let path = std::env::temp_dir().join("tdm_trace_replay_example.tdmtrace");
    let path = path.to_str().expect("temp path is valid UTF-8");
    trace::write_to(path, &mut spec.stream()).expect("trace written");
    println!("dumped to {path}");

    // Replay the file and run both the generator and the replay through the
    // same backend and scheduler.
    let config = ExecConfig::default().with_cores(8);
    let mut replay = TraceSource::read_from(path).expect("trace parses");
    let replayed = simulate_stream(
        &mut replay,
        &Backend::tdm_default(),
        SchedulerKind::Locality,
        &config,
    );
    let mut generated = spec.stream();
    let expected = simulate_stream(
        &mut generated,
        &Backend::tdm_default(),
        SchedulerKind::Locality,
        &config,
    );

    assert_eq!(expected, replayed, "trace replay must reproduce the run");
    println!(
        "replayed {} tasks on TDM/Locality: makespan {} cycles, bit-identical to the generator",
        replayed.tasks,
        replayed.makespan().raw()
    );
}
