//! # tdm — reproduction of *Architectural Support for Task Dependence
//! Management with Flexible Software Scheduling* (HPCA 2018)
//!
//! This facade crate re-exports the public API of the workspace so that
//! examples, integration tests and downstream users can depend on a single
//! crate:
//!
//! * [`core`] — the Dependence Management Unit (DMU): alias
//!   tables, task/dependence tables, list arrays, ready queue and the four
//!   TDM ISA operations (the paper's contribution).
//! * [`sim`] — the discrete-event multicore timing substrate
//!   (cycle clock, chip configuration, phase accounting, locality and NoC
//!   models).
//! * [`runtime`] — the task-based data-flow runtime: task
//!   graphs, the five software schedulers, the software / TDM / Carbon /
//!   Task Superscalar backends, and the execution driver.
//! * [`workloads`] — generators for the nine evaluated
//!   benchmarks, calibrated to Table II.
//! * [`energy`] — CACTI/McPAT-style area, power and EDP models.
//!
//! # Quick start
//!
//! ```
//! use tdm::prelude::*;
//!
//! // Run the Cholesky benchmark on TDM with the locality-aware scheduler.
//! let workload = Benchmark::Cholesky.tdm_workload();
//! let report = simulate(
//!     &workload,
//!     &Backend::tdm_default(),
//!     SchedulerKind::Locality,
//!     &ExecConfig::default(),
//! );
//! assert_eq!(report.stats.tasks_executed, 5_984);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub use tdm_core as core;
pub use tdm_energy as energy;
pub use tdm_runtime as runtime;
pub use tdm_sim as sim;
pub use tdm_workloads as workloads;

/// The most commonly used items, re-exported for convenience.
pub mod prelude {
    pub use tdm_core::config::{DmuConfig, IndexPolicy};
    pub use tdm_core::dmu::Dmu;
    pub use tdm_core::ids::{DepAddr, DepDirection, DescriptorAddr};
    pub use tdm_energy::chip::ChipPowerModel;
    pub use tdm_energy::edp::evaluate as evaluate_energy;
    pub use tdm_runtime::exec::{
        simulate, simulate_outcome, Backend, ExecConfig, RunOutcome, RunReport, ScheduledTask,
    };
    pub use tdm_runtime::fault::FaultConfig;
    pub use tdm_runtime::scheduler::SchedulerKind;
    pub use tdm_runtime::task::{DependenceSpec, TaskSpec, Workload};
    pub use tdm_runtime::tdg::TaskGraph;
    pub use tdm_sim::clock::{Cycle, Frequency};
    pub use tdm_sim::config::ChipConfig;
    pub use tdm_sim::stats::Phase;
    pub use tdm_workloads::Benchmark;
}
