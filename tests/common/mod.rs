//! Shared support for the facade's integration tests: deterministic random
//! workload generation (seeded with the workspace's own [`SplitMix64`], so no
//! external property-testing crate is needed offline) and a driver that runs
//! a [`DependenceEngine`] to completion recording the finish order.

#![allow(dead_code)] // each test crate uses a subset of these helpers

use std::collections::VecDeque;

use tdm::prelude::*;
use tdm::runtime::engine::DependenceEngine;
use tdm::runtime::task::TaskRef;
use tdm::sim::rng::SplitMix64;
use tdm::workloads::stream::TaskStream;
use tdm::workloads::{cholesky, histogram, qr};

/// Address pool the random workloads draw from: a small set of blocks so
/// RAW / WAR / WAW collisions are frequent.
const BLOCKS: u64 = 24;
const BLOCK_BASE: u64 = 0x9_0000;
const BLOCK_SIZE: u64 = 0x1000;

/// Generates a random workload from `seed`: 1–120 tasks with 0–4 dependences
/// each over a 24-block address pool. The same seed always yields the same
/// workload (bit-for-bit), replacing the proptest strategy the seed tests
/// used with an offline-friendly equivalent.
pub fn random_workload(seed: u64) -> Workload {
    let mut rng = SplitMix64::new(seed);
    let num_tasks = 1 + rng.next_below(119) as usize;
    let tasks = (0..num_tasks)
        .map(|_| {
            let num_deps = rng.next_below(5) as usize;
            let deps = (0..num_deps)
                .map(|_| {
                    let addr = BLOCK_BASE + rng.next_below(BLOCKS) * BLOCK_SIZE;
                    match rng.next_below(3) {
                        0 => DependenceSpec::input(addr, BLOCK_SIZE),
                        1 => DependenceSpec::output(addr, BLOCK_SIZE),
                        _ => DependenceSpec::inout(addr, BLOCK_SIZE),
                    }
                })
                .collect();
            TaskSpec::new("rand", Cycle::new(10_000), deps)
        })
        .collect();
    Workload::new(format!("random-{seed}"), tasks)
}

/// Scaled-down versions of three structured benchmarks (a tiled
/// factorization, a second factorization with a different dependence
/// pattern, and a reduction tree). Small enough that the full
/// backend × scheduler conformance matrix runs in seconds in debug builds.
pub fn small_benchmarks() -> Vec<Workload> {
    small_benchmark_streams()
        .into_iter()
        .map(TaskStream::into_workload)
        .collect()
}

/// The lazy-stream counterparts of [`small_benchmarks`], task-for-task
/// identical; the eager-vs-streaming conformance suite runs both sides.
pub fn small_benchmark_streams() -> Vec<TaskStream> {
    vec![
        cholesky::stream(cholesky::Params { blocks: 8 }),
        qr::stream(qr::Params { blocks: 8 }),
        histogram::stream(histogram::Params { stripes: 32 }),
    ]
}

/// Drives an engine over `workload` to completion, executing ready tasks in
/// FIFO order, and returns the finish order. Panics if the engine deadlocks
/// (a task neither completes creation nor becomes ready).
pub fn drive(engine: &mut dyn DependenceEngine, workload: &Workload) -> Vec<TaskRef> {
    let n = workload.len();
    let mut order = Vec::new();
    // Engines append newly ready tasks into `ready`; the `VecDeque` pool
    // pops the oldest in O(1) (this used to be a `Vec` with an O(n)
    // `remove(0)` per executed task).
    let mut ready = Vec::new();
    let mut pool: VecDeque<tdm::runtime::engine::ReadyInfo> = VecDeque::new();
    let mut next = 0usize;
    while order.len() < n {
        if next < n {
            ready.clear();
            let outcome = engine.create_task(
                Cycle::ZERO,
                TaskRef(next),
                workload.spec(TaskRef(next)),
                &mut ready,
            );
            pool.extend(ready.drain(..));
            if outcome.completed {
                next += 1;
                continue;
            }
        }
        let Some(info) = pool.pop_front() else {
            panic!("engine deadlocked with {} tasks left", n - order.len());
        };
        ready.clear();
        engine.finish_task(Cycle::ZERO, info.task, 0, &mut ready);
        pool.extend(ready.drain(..));
        order.push(info.task);
    }
    order
}

/// Asserts that `order` is a permutation of `0..n`: every task finished
/// exactly once — nothing lost, nothing duplicated.
pub fn assert_is_permutation(order: &[TaskRef], n: usize) {
    assert_eq!(order.len(), n, "finished {} of {n} tasks", order.len());
    let mut seen = vec![false; n];
    for task in order {
        assert!(!seen[task.index()], "task {task} finished twice");
        seen[task.index()] = true;
    }
}
