//! Batched-vs-per-op DMU equivalence.
//!
//! The driver hands the dependence engines whole same-cycle batches
//! (`finish_batch`, `Dmu::add_dependences`) so table lookups, dispatch and
//! buffer churn are amortised — but batching is contractually an *actual*-work
//! optimisation only: modeled accesses, costs, schedules and statistics must
//! be bit-identical to issuing one operation at a time. The
//! [`ExecConfig::per_op_dmu`] knob forces the one-at-a-time entry points;
//! these tests run every cell of the conformance matrix both ways and compare
//! entire [`RunReport`]s (stats, phase breakdowns, hardware counters and the
//! traced schedule all participate in `PartialEq`).

use crate::common::{small_benchmark_streams, small_benchmarks};
use crate::{all_backends, conformance_config};
use tdm::prelude::*;
use tdm::runtime::exec::simulate_stream;

/// Eager matrix: benchmark × backend × scheduler, batched vs per-op.
#[test]
fn batched_dmu_matches_per_op_across_the_matrix() {
    let batched_config = conformance_config();
    let per_op_config = conformance_config().with_per_op_dmu();
    for workload in small_benchmarks() {
        for backend in all_backends() {
            for scheduler in SchedulerKind::all() {
                let context = format!(
                    "{} on {} with {}",
                    workload.name,
                    backend.name(),
                    scheduler.name()
                );
                let batched = simulate(&workload, &backend, scheduler, &batched_config);
                let per_op = simulate(&workload, &backend, scheduler, &per_op_config);
                assert_eq!(batched, per_op, "{context}");
            }
        }
    }
}

/// Streaming side with a finite window: the throttled master retries
/// creation after finishes, so the batched creation-resume path (partial
/// `add_dependences` progress) is exercised too.
#[test]
fn batched_dmu_matches_per_op_when_streaming_windowed() {
    for window in [2usize, 16] {
        let batched_config = conformance_config().with_window(window);
        let per_op_config = conformance_config().with_window(window).with_per_op_dmu();
        for (w_idx, workload) in small_benchmarks().iter().enumerate() {
            for backend in [Backend::tdm_default(), Backend::task_superscalar_default()] {
                let context = format!("{} window {window} on {}", workload.name, backend.name());
                let mut stream = small_benchmark_streams().swap_remove(w_idx);
                let batched =
                    simulate_stream(&mut stream, &backend, SchedulerKind::Fifo, &batched_config);
                let mut stream = small_benchmark_streams().swap_remove(w_idx);
                let per_op =
                    simulate_stream(&mut stream, &backend, SchedulerKind::Fifo, &per_op_config);
                assert_eq!(batched, per_op, "{context}");
            }
        }
    }
}

/// A deliberately tiny DMU stalls constantly, so the stall-and-retry protocol
/// of the batched `add_dependences` (resume from the per-op counter count)
/// must line up with per-op retries on every stall.
#[test]
fn batched_dmu_matches_per_op_under_constant_stalls() {
    let dmu = DmuConfig {
        tat_entries: 16,
        tat_ways: 8,
        dat_entries: 16,
        dat_ways: 8,
        successor_la_entries: 16,
        dependence_la_entries: 16,
        reader_la_entries: 16,
        ..DmuConfig::default()
    };
    let backend = Backend::Tdm(dmu);
    let batched_config = conformance_config();
    let per_op_config = conformance_config().with_per_op_dmu();
    for workload in small_benchmarks() {
        let batched = simulate(&workload, &backend, SchedulerKind::Fifo, &batched_config);
        let per_op = simulate(&workload, &backend, SchedulerKind::Fifo, &per_op_config);
        let hw = batched
            .hardware
            .as_ref()
            .expect("TDM runs carry a hardware report");
        assert!(
            hw.stats.stalls > 0,
            "{}: tiny DMU must stall",
            workload.name
        );
        assert_eq!(batched, per_op, "{}", workload.name);
    }
}
