//! Determinism: the simulator must be a pure function of (workload, backend,
//! scheduler, config). Repeated runs with the same `ExecConfig::seed` must
//! produce bit-identical cycle counts, phase breakdowns and schedules.

use crate::common::small_benchmarks;
use crate::{all_backends, conformance_config};
use tdm::prelude::*;

/// Two runs of every benchmark × backend × scheduler cell must agree on
/// makespan, full per-core statistics and the executed schedule.
#[test]
fn repeated_runs_are_bit_identical() {
    let config = conformance_config();
    for workload in small_benchmarks() {
        for backend in all_backends() {
            for scheduler in [
                SchedulerKind::Fifo,
                SchedulerKind::Locality,
                SchedulerKind::Age,
            ] {
                let a = simulate(&workload, &backend, scheduler, &config);
                let b = simulate(&workload, &backend, scheduler, &config);
                let context = format!(
                    "{} on {} with {}",
                    workload.name,
                    backend.name(),
                    scheduler.name()
                );
                assert_eq!(a.makespan(), b.makespan(), "{context}: makespan");
                assert_eq!(a.stats, b.stats, "{context}: stats");
                assert_eq!(a.schedule, b.schedule, "{context}: schedule");
            }
        }
    }
}

/// The jitter seed changes durations but never correctness: different seeds
/// may change the makespan, while each seed remains self-consistent.
#[test]
fn different_seeds_are_each_self_consistent() {
    let workload = &small_benchmarks()[0];
    let graph = TaskGraph::build(workload);
    for seed in [1u64, 7, 42] {
        let config = ExecConfig {
            seed,
            ..conformance_config()
        };
        let a = simulate(
            workload,
            &Backend::tdm_default(),
            SchedulerKind::Fifo,
            &config,
        );
        let b = simulate(
            workload,
            &Backend::tdm_default(),
            SchedulerKind::Fifo,
            &config,
        );
        assert_eq!(a.makespan(), b.makespan(), "seed {seed}");
        assert_eq!(a.schedule, b.schedule, "seed {seed}");
        assert!(graph.check_order(&a.finish_order()).is_ok(), "seed {seed}");
    }
}
