//! Fault-injection conformance: determinism, golden validity and
//! checkpoint/restart under injected failures.
//!
//! The fault layer must be a pure overlay on the deterministic driver:
//!
//! * **off means off** — a fault configuration with all rates zero is
//!   bit-identical to no fault configuration at all, across the full
//!   backend × scheduler matrix, on both the eager and streaming paths;
//! * **schedule validity survives faults** — a faulted run's executed
//!   schedule is still a topological order of the reference graph, with
//!   every task finishing exactly once (retries never lose or duplicate
//!   work), and eager and streaming drivers agree bit for bit on the same
//!   fault schedule;
//! * **abort is typed** — exhausting the retry budget yields
//!   [`RunOutcome::Aborted`] with a deterministic attempt count, not a
//!   panic;
//! * **retirement degrades gracefully** — with sticky core faults the
//!   survivors (ultimately the exempt master) still drain the workload;
//! * **resume is bit-exact through faults** — a run checkpointed between a
//!   failure and its retry resumes to the uninterrupted run's report.

use crate::common::{assert_is_permutation, small_benchmark_streams, small_benchmarks};
use crate::{all_backends, conformance_config};
use tdm::prelude::*;
use tdm::runtime::exec::{
    resume_outcome, simulate_checkpointed_outcome, simulate_stream, simulate_stream_outcome,
};
use tdm::sim::snapshot::Snapshot;

/// A fault schedule that exercises retries but can never abort: the
/// per-task cap stays below the retry budget, so every faulted task
/// eventually completes.
fn survivable_faults() -> FaultConfig {
    FaultConfig::default()
        .with_fault_rate(0.25)
        .with_max_faults_per_task(2)
        .with_retry_budget(8)
}

/// Golden-model check of a faulted (but completed) run: every task finishes
/// exactly once, in an order the reference graph allows.
fn assert_schedule_valid(report: &RunReport, workload: &Workload, context: &str) {
    assert_eq!(
        report.stats.tasks_executed,
        workload.len() as u64,
        "{context}: task count"
    );
    let order = report.finish_order();
    assert_is_permutation(&order, workload.len());
    let graph = TaskGraph::build(workload);
    if let Err((pred, task)) = graph.check_order(&order) {
        panic!("{context}: task {task} finished before its predecessor {pred}");
    }
}

/// All-zero rates must be indistinguishable from no fault configuration:
/// identical reports (stats, schedules, counters) on every backend ×
/// scheduler cell, eager and streaming.
#[test]
fn zero_rate_faults_are_bit_identical_to_disabled_faults() {
    let workload = &small_benchmarks()[0];
    let plain_config = conformance_config();
    let zeroed_config = conformance_config().with_faults(FaultConfig::default());
    for backend in all_backends() {
        for scheduler in SchedulerKind::all() {
            let context = format!("{} with {}", backend.name(), scheduler.name());
            let plain = simulate(workload, &backend, scheduler, &plain_config);
            let zeroed = simulate(workload, &backend, scheduler, &zeroed_config);
            assert_eq!(plain, zeroed, "{context}: eager");
            assert_eq!(zeroed.faults_injected, 0, "{context}: fault counter");
            assert_eq!(zeroed.retries, 0, "{context}: retry counter");
            assert_eq!(zeroed.retired_cores, 0, "{context}: retirement counter");
        }
    }

    let mut stream = small_benchmark_streams().swap_remove(0);
    let plain = simulate_stream(
        &mut stream,
        &Backend::tdm_default(),
        SchedulerKind::Fifo,
        &plain_config,
    );
    let mut stream = small_benchmark_streams().swap_remove(0);
    let zeroed = simulate_stream(
        &mut stream,
        &Backend::tdm_default(),
        SchedulerKind::Fifo,
        &zeroed_config,
    );
    assert_eq!(plain, zeroed, "streaming");
}

/// The same seed must produce the same fault schedule on the eager and
/// streaming drivers — bit-identical reports — and the faulted schedule
/// must still conform to the reference graph on every backend.
#[test]
fn fault_schedules_agree_between_eager_and_streaming() {
    let config = conformance_config().with_faults(survivable_faults());
    let workloads = small_benchmarks();
    for (w_idx, workload) in workloads.iter().enumerate() {
        for backend in all_backends() {
            let context = format!("{} on {}", workload.name, backend.name());
            let eager = simulate(workload, &backend, SchedulerKind::Fifo, &config);
            assert!(eager.faults_injected > 0, "{context}: no faults injected");
            assert_eq!(
                eager.faults_injected, eager.retries,
                "{context}: every survivable failure must be retried"
            );
            assert_schedule_valid(&eager, workload, &context);

            let mut stream = small_benchmark_streams().swap_remove(w_idx);
            let streamed =
                simulate_stream_outcome(&mut stream, &backend, SchedulerKind::Fifo, &config);
            assert_eq!(
                RunOutcome::Completed(eager),
                streamed,
                "{context}: streaming diverged"
            );
        }
    }
}

/// A certain-failure schedule with a small retry budget must abort with a
/// typed outcome: the offending task, exactly `budget + 1` attempts, and a
/// deterministic partial report — identically on every run.
#[test]
fn retry_exhaustion_aborts_with_a_typed_outcome() {
    let workload = &small_benchmarks()[0];
    let config = conformance_config().with_faults(
        FaultConfig::default()
            .with_fault_rate(1.0)
            .with_max_faults_per_task(u32::MAX)
            .with_retry_budget(3),
    );
    let outcome = simulate_outcome(
        workload,
        &Backend::tdm_default(),
        SchedulerKind::Fifo,
        &config,
    );
    let RunOutcome::Aborted {
        task,
        attempts,
        report,
    } = &outcome
    else {
        panic!("a certain-failure schedule must abort, got {outcome:?}");
    };
    assert_eq!(*attempts, 4, "budget 3 allows exactly 4 attempts");
    assert!(
        u64::from(*attempts) <= report.faults_injected,
        "the aborting task's failures are part of the fault counter"
    );
    assert_eq!(report.stats.tasks_executed, 0, "no task can ever finish");
    assert!(task.index() < workload.len());

    let again = simulate_outcome(
        workload,
        &Backend::tdm_default(),
        SchedulerKind::Fifo,
        &config,
    );
    assert_eq!(outcome, again, "abort must be deterministic");
}

/// Sticky core faults retire every worker at its first completion; the
/// exempt master must still drain the whole workload, and the degraded run
/// stays valid and deterministic.
#[test]
fn core_retirement_degrades_gracefully() {
    let workload = &small_benchmarks()[2];
    let config = conformance_config().with_faults(FaultConfig::default().with_core_fault_rate(1.0));
    let report = simulate(
        workload,
        &Backend::tdm_default(),
        SchedulerKind::Fifo,
        &config,
    );
    let context = "all-worker retirement".to_string();
    assert_schedule_valid(&report, workload, &context);
    assert!(
        report.retired_cores > 0,
        "a parallel run must retire at least one worker"
    );
    assert!(
        report.retired_cores < config.chip.num_cores as u64,
        "the master is exempt from retirement"
    );
    assert_eq!(report.faults_injected, 0, "no transient faults configured");

    let again = simulate(
        workload,
        &Backend::tdm_default(),
        SchedulerKind::Fifo,
        &config,
    );
    assert_eq!(report, again, "retirement must be deterministic");
}

/// Checkpoint/restart through a fault schedule: snapshots taken while
/// failures and retries are in flight (including a populated retry queue)
/// must resume to the uninterrupted run's report, bit for bit, on every
/// backend.
#[test]
fn resume_through_faults_is_bit_exact() {
    let workload = &small_benchmarks()[0];
    for backend in all_backends() {
        let context = format!("{} under faults", backend.name());
        let base = conformance_config().with_faults(survivable_faults());
        let straight = simulate(workload, &backend, SchedulerKind::Fifo, &base);
        assert!(
            straight.faults_injected > 0,
            "{context}: no faults injected"
        );

        let interval = Cycle::new((straight.makespan().raw() / 8).max(1));
        let config = base.with_checkpoint_every(interval);
        let mut snaps: Vec<Snapshot> = Vec::new();
        let checkpointed = simulate_checkpointed_outcome(
            workload,
            &backend,
            SchedulerKind::Fifo,
            &config,
            &mut |snap| {
                snaps.push(Snapshot::from_bytes(&snap.to_bytes()).expect("codec round trip"));
                true
            },
        )
        .expect("sink never halts");
        assert_eq!(
            checkpointed,
            RunOutcome::Completed(straight.clone()),
            "{context}: capture perturbed the run"
        );
        assert!(!snaps.is_empty(), "{context}: no checkpoints captured");
        for (i, snap) in snaps.iter().enumerate() {
            let resumed = resume_outcome(workload, snap, &config)
                .unwrap_or_else(|e| panic!("{context}, checkpoint {i}: {e}"));
            assert_eq!(
                resumed,
                RunOutcome::Completed(straight.clone()),
                "{context}: resumed from checkpoint {i}"
            );
        }
    }
}

/// Resume must refuse a fault configuration that differs from the one the
/// snapshot was taken under — including faults-off vs faults-on.
#[test]
fn resume_refuses_diverging_fault_configuration() {
    let workload = &small_benchmarks()[0];
    let base = conformance_config().with_faults(survivable_faults());
    let straight = simulate(
        workload,
        &Backend::tdm_default(),
        SchedulerKind::Fifo,
        &base,
    );
    let interval = Cycle::new((straight.makespan().raw() / 4).max(1));
    let config = base.with_checkpoint_every(interval);
    let mut snaps: Vec<Snapshot> = Vec::new();
    simulate_checkpointed_outcome(
        workload,
        &Backend::tdm_default(),
        SchedulerKind::Fifo,
        &config,
        &mut |snap| {
            snaps.push(snap);
            true
        },
    )
    .expect("sink never halts");

    let mut no_faults = config.clone();
    no_faults.fault = None;
    let err = resume_outcome(workload, &snaps[0], &no_faults).unwrap_err();
    assert!(
        err.to_string().contains("fault configuration"),
        "wrong error: {err}"
    );

    let mut other_rate = config.clone();
    other_rate.fault = Some(survivable_faults().with_fault_rate(0.5));
    let err = resume_outcome(workload, &snaps[0], &other_rate).unwrap_err();
    assert!(
        err.to_string().contains("fault configuration"),
        "wrong error: {err}"
    );
}
