//! Conformance over the adversarial workload grammar.
//!
//! The structured benchmarks exercise the shapes the paper measures; the
//! grammar ([`tdm_workloads::grammar`]) exercises the shapes an adversary
//! would pick — renaming storms, reader swarms, deep chains, dense random
//! phases. A fixed fan of grammar seeds runs through every backend ×
//! scheduler cell and must satisfy exactly the same contract as the
//! benchmarks: golden-model validity, eager-vs-streaming identity, and
//! snapshot/resume bit-identity. Two stress regressions pin down that the
//! adversarial generators really do provoke the hardware pressure they are
//! named after (alias-table stalls, reader-list overflow chaining) and that
//! the pressured runs stay deterministic.

use tdm::prelude::*;
use tdm::runtime::exec::{resume, simulate_checkpointed, simulate_stream};
use tdm::sim::snapshot::Snapshot;
use tdm::workloads::grammar::{self, GrammarSpec};

use crate::common::assert_is_permutation;
use crate::{all_backends, conformance_config};

/// The fixed seed fan. Drawn specs cover every shape kind between them
/// (asserted below), so the matrix cannot silently lose coverage if the
/// drawing distribution shifts.
const SEEDS: [u64; 4] = [1, 7, 42, 0xDEAD_BEEF];

fn specs() -> Vec<GrammarSpec> {
    let specs: Vec<GrammarSpec> = SEEDS.iter().map(|&s| GrammarSpec::draw(s)).collect();
    let encoded: Vec<String> = specs.iter().map(GrammarSpec::encode).collect();
    for kind in ["chain", "fan", "storm", "swarm", "mixed"] {
        assert!(
            encoded.iter().any(|e| e.contains(kind)),
            "seed fan lost coverage of shape kind {kind:?}: {encoded:?}"
        );
    }
    specs
}

/// Every grammar spec × backend × scheduler: the finish order is a
/// topological order of the golden model and a permutation of the workload,
/// and the streaming driver reproduces the eager run field for field
/// (`peak_resident_tasks` excepted — it measures driver memory footprint,
/// not the schedule).
#[test]
fn grammar_matrix_respects_reference_graph() {
    let config = conformance_config();
    for spec in specs() {
        let workload = spec.stream().into_workload();
        let graph = TaskGraph::build(&workload);
        for backend in all_backends() {
            for scheduler in SchedulerKind::all() {
                let context = format!(
                    "{} on {} with {}",
                    workload.name,
                    backend.name(),
                    scheduler.name()
                );
                let eager = simulate(&workload, &backend, scheduler, &config);
                let order = eager.finish_order();
                assert_is_permutation(&order, workload.len());
                if let Err((pred, task)) = graph.check_order(&order) {
                    panic!("{context}: task {task} finished before its predecessor {pred}");
                }
                let mut stream = spec.stream();
                let streamed = simulate_stream(&mut stream, &backend, scheduler, &config);
                assert_eq!(eager.makespan(), streamed.makespan(), "{context}: makespan");
                assert_eq!(eager.stats, streamed.stats, "{context}: stats");
                assert_eq!(eager.hardware, streamed.hardware, "{context}: hardware");
                assert_eq!(eager.schedule, streamed.schedule, "{context}: schedule");
                assert_eq!(eager.tasks, streamed.tasks, "{context}: task count");
            }
        }
    }
}

/// Snapshot/resume bit-identity over the grammar fan. Each spec rotates
/// through a different backend × scheduler cell (a pure function of its
/// seed, so failures replay), checkpointed at quarter-makespan intervals
/// with every snapshot pushed through the binary codec.
#[test]
fn grammar_snapshot_resume_is_bit_identical() {
    let backends = all_backends();
    let schedulers = SchedulerKind::all();
    for spec in specs() {
        let backend = &backends[(spec.seed % backends.len() as u64) as usize];
        let scheduler = schedulers[(spec.seed % schedulers.len() as u64) as usize];
        let context = format!(
            "{} on {} with {}",
            spec.name(),
            backend.name(),
            scheduler.name()
        );
        let workload = spec.stream().into_workload();
        let straight = simulate(&workload, backend, scheduler, &conformance_config());
        let interval = Cycle::new((straight.makespan().raw() / 4).max(1));
        let config = conformance_config().with_checkpoint_every(interval);
        let mut snaps = Vec::new();
        let report = simulate_checkpointed(&workload, backend, scheduler, &config, &mut |snap| {
            snaps.push(Snapshot::from_bytes(&snap.to_bytes()).expect("codec round trip"));
            true
        })
        .expect("sink never halts");
        assert_eq!(report, straight, "{context}: capture perturbed the run");
        assert!(!snaps.is_empty(), "{context}: no checkpoints captured");
        for (i, snap) in snaps.iter().enumerate() {
            let resumed = resume(&workload, snap, &config).expect("resume");
            assert_eq!(resumed, straight, "{context}: resumed from checkpoint {i}");
        }
    }
}

/// A renaming storm on an undersized DMU must actually pressure the alias
/// tables — the run stalls at least once, the access counters move, and a
/// second run reproduces every total bit for bit.
#[test]
fn renaming_storm_pressures_undersized_alias_tables() {
    let dmu = DmuConfig::default().with_alias_sizes(32, 32);
    let config = conformance_config();
    let run = || {
        let workload = grammar::renaming_storm(9, 96, 6).into_workload();
        let graph = TaskGraph::build(&workload);
        let report = simulate(
            &workload,
            &Backend::Tdm(dmu.clone()),
            SchedulerKind::Fifo,
            &config,
        );
        let order = report.finish_order();
        assert_is_permutation(&order, workload.len());
        assert!(graph.check_order(&order).is_ok(), "storm broke ordering");
        report
    };
    let report = run();
    let hw = report
        .hardware
        .as_ref()
        .expect("hardware backend must report");
    assert!(
        hw.stats.stalls > 0,
        "a 96-writer storm over 6 addresses must stall 32-entry alias tables"
    );
    assert!(hw.stats.total_accesses > 0, "access counters never moved");
    assert_eq!(hw.stats.creates, 96, "every writer creates one descriptor");
    assert_eq!(run(), report, "storm totals must be deterministic");
}

/// A reader swarm wider than one Reader List Array entry (8 elements) must
/// overflow into chained entries, and the chained run stays deterministic.
#[test]
fn reader_swarm_chains_reader_list_entries() {
    let config = conformance_config();
    let run = || {
        let workload = grammar::reader_swarm(11, 24, 2).into_workload();
        let graph = TaskGraph::build(&workload);
        let report = simulate(
            &workload,
            &Backend::tdm_default(),
            SchedulerKind::Fifo,
            &config,
        );
        let order = report.finish_order();
        assert_is_permutation(&order, workload.len());
        assert!(graph.check_order(&order).is_ok(), "swarm broke ordering");
        report
    };
    let report = run();
    let hw = report
        .hardware
        .as_ref()
        .expect("hardware backend must report");
    assert!(
        hw.peak.reader_la >= 24usize.div_ceil(8),
        "24 concurrent readers must chain across Reader LA entries, peak was {}",
        hw.peak.reader_la
    );
    assert!(hw.stats.total_accesses > 0, "access counters never moved");
    assert_eq!(run(), report, "swarm totals must be deterministic");
}
