//! Cross-backend conformance harness.
//!
//! For every benchmark × backend × scheduler combination, these tests replay
//! the workload through the selected dependence engine (the DMU for TDM and
//! Task Superscalar, the software tracker for Software and Carbon) and check
//! the executed schedule against the reference
//! [`TaskGraph`](tdm::runtime::tdg::TaskGraph) golden model:
//!
//! * **validity** — the finish order is a topological order of the graph
//!   ([`schedule`]): no task finishes before one of its predecessors;
//! * **completeness** — the schedule is a permutation of the workload: no
//!   task is lost or executed twice;
//! * **determinism** — repeated runs with the same [`ExecConfig`] seed
//!   produce identical cycle counts, phase breakdowns and schedules
//!   ([`determinism`]).
//!
//! The matrix covers the 4 backends, all 5 software scheduling policies and
//! 3 structured benchmarks (plus random workloads), scaled down so the whole
//! harness runs in seconds in debug builds.

#[path = "../common/mod.rs"]
mod common;

mod batching;
mod determinism;
mod faults;
mod grammar;
mod schedule;
mod snapshot;
mod stats;
mod streaming;
mod sweep;
mod trace;

use tdm::prelude::*;

/// The backends of Section VI-C, all four organisations.
pub fn all_backends() -> Vec<Backend> {
    vec![
        Backend::Software,
        Backend::tdm_default(),
        Backend::Carbon,
        Backend::task_superscalar_default(),
    ]
}

/// The chip configuration used by the conformance matrix: 8 cores keeps
/// debug-build runtimes low while still exercising parallel scheduling.
/// Schedule tracing is opt-in ([`ExecConfig::trace_schedule`]) and these
/// tests are exactly the consumer it exists for: they replay the executed
/// schedule against the golden model.
pub fn conformance_config() -> ExecConfig {
    ExecConfig {
        chip: ChipConfig::with_cores(8),
        ..ExecConfig::default()
    }
    .with_trace_schedule()
}
