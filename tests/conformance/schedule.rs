//! Schedule validity: every executed schedule must be a topological order of
//! the reference task graph, with no lost or duplicated tasks, on every
//! benchmark × backend × scheduler combination.

use crate::common::{assert_is_permutation, drive, random_workload, small_benchmarks};
use crate::{all_backends, conformance_config};
use tdm::core::config::DmuConfig;
use tdm::prelude::*;
use tdm::runtime::cost::CostModel;
use tdm::runtime::engine::{HardwareEngine, HardwareFlavor};

/// Checks one simulated run against the golden model and returns the report.
fn check_run(
    workload: &Workload,
    graph: &TaskGraph,
    backend: &Backend,
    scheduler: SchedulerKind,
    config: &ExecConfig,
) -> RunReport {
    let report = simulate(workload, backend, scheduler, config);
    let context = format!(
        "{} on {} with {}",
        workload.name,
        backend.name(),
        scheduler.name()
    );
    assert_eq!(
        report.stats.tasks_executed,
        workload.len() as u64,
        "{context}: task count"
    );
    let order = report.finish_order();
    assert_is_permutation(&order, workload.len());
    if let Err((pred, task)) = graph.check_order(&order) {
        panic!("{context}: task {task} finished before its predecessor {pred}");
    }
    for entry in &report.schedule {
        assert!(
            entry.core < config.chip.num_cores,
            "{context}: task {} ran on nonexistent core {}",
            entry.task,
            entry.core
        );
        assert!(
            entry.finish <= report.makespan(),
            "{context}: finish after makespan"
        );
    }
    report
}

/// The full conformance matrix: 3 structured benchmarks × 4 backends × all
/// 5 software scheduling policies.
#[test]
fn full_matrix_respects_reference_graph() {
    let config = conformance_config();
    for workload in small_benchmarks() {
        let graph = TaskGraph::build(&workload);
        assert!(
            graph.critical_path_len() > 1,
            "{} is trivial",
            workload.name
        );
        for backend in all_backends() {
            for scheduler in SchedulerKind::all() {
                check_run(&workload, &graph, &backend, scheduler, &config);
            }
        }
    }
}

/// Random workloads (heavy RAW/WAR/WAW collisions) through the full backend
/// set; schedulers rotate per seed to keep the runtime bounded.
#[test]
fn random_workloads_respect_reference_graph() {
    let config = conformance_config();
    for seed in 0..16u64 {
        let workload = random_workload(seed);
        let graph = TaskGraph::build(&workload);
        let scheduler = SchedulerKind::all()[(seed % 5) as usize];
        for backend in all_backends() {
            check_run(&workload, &graph, &backend, scheduler, &config);
        }
    }
}

/// An undersized DMU forces evictions, renaming pressure and list-array
/// overflow chaining; the schedule must still conform.
#[test]
fn undersized_dmu_still_conforms() {
    let dmu = DmuConfig {
        tat_entries: 32,
        tat_ways: 8,
        dat_entries: 32,
        dat_ways: 8,
        successor_la_entries: 32,
        dependence_la_entries: 32,
        reader_la_entries: 32,
        ..DmuConfig::default()
    };
    let config = conformance_config();
    for workload in small_benchmarks() {
        let graph = TaskGraph::build(&workload);
        for backend in [
            Backend::Tdm(dmu.clone()),
            Backend::TaskSuperscalar(dmu.clone()),
        ] {
            let report = check_run(&workload, &graph, &backend, SchedulerKind::Fifo, &config);
            let hw = report.hardware.expect("hardware backend must report");
            assert!(
                hw.stats.stalls > 0,
                "{}: an undersized DMU should stall at least once",
                workload.name
            );
        }
    }
}

/// Engine-level replay: drive both hardware flavors directly through the DMU
/// (no simulated chip around them) and check the finish order against the
/// golden model.
#[test]
fn dmu_engine_replay_conforms_for_both_flavors() {
    for workload in small_benchmarks() {
        let graph = TaskGraph::build(&workload);
        for flavor in [HardwareFlavor::Tdm, HardwareFlavor::TaskSuperscalar] {
            let mut engine = HardwareEngine::new(
                flavor,
                DmuConfig::default(),
                CostModel::default(),
                Cycle::new(16),
            );
            let order = drive(&mut engine, &workload);
            assert_is_permutation(&order, workload.len());
            assert!(
                graph.check_order(&order).is_ok(),
                "{} with {flavor:?}",
                workload.name
            );
        }
    }
}
