//! Checkpoint/restart conformance: resume-vs-straight-through bit-identity.
//!
//! A checkpointed run must be observably identical to a plain run (capture
//! never perturbs modeled time), and resuming from *any* checkpoint must
//! reproduce the uninterrupted run's [`RunReport`] bit for bit — stats,
//! phase breakdowns, DMU counters and (traced) schedule. These tests pin
//! that across the backend × scheduler matrix, at several capture points per
//! run, on both the eager and the streaming (windowed) path, and always push
//! each snapshot through the binary container
//! ([`Snapshot::to_bytes`]/[`Snapshot::from_bytes`]) so the full codec is on
//! the resume path, not just the in-memory structures.
//!
//! The section-table test keeps `SNAPSHOT_FORMAT.md` honest: every section
//! the driver writes must be in the registry
//! ([`tdm::sim::snapshot::SECTIONS`]) and described in the format document.

use crate::common::{random_workload, small_benchmark_streams, small_benchmarks};
use crate::{all_backends, conformance_config};
use tdm::prelude::*;
use tdm::runtime::exec::{
    resume, resume_stream, simulate_checkpointed, simulate_stream, simulate_stream_checkpointed,
};
use tdm::sim::snapshot::{self, Snapshot, SnapshotError};

/// A capture interval that yields several checkpoints over `straight`'s
/// makespan (and at least one even for degenerate runs).
fn quarter_interval(straight: &RunReport) -> Cycle {
    Cycle::new((straight.makespan().raw() / 4).max(1))
}

/// Runs `workload` checkpointed, asserts capture did not perturb the run,
/// and returns the snapshots after a round trip through the binary codec.
fn checkpoints_of(
    workload: &Workload,
    backend: &Backend,
    scheduler: SchedulerKind,
    config: &ExecConfig,
    straight: &RunReport,
) -> Vec<Snapshot> {
    let mut snaps = Vec::new();
    let report = simulate_checkpointed(workload, backend, scheduler, config, &mut |snap| {
        snaps.push(Snapshot::from_bytes(&snap.to_bytes()).expect("codec round trip"));
        true
    })
    .expect("sink never halts");
    assert_eq!(
        &report,
        straight,
        "capture perturbed the run ({} / {})",
        backend.name(),
        scheduler.name()
    );
    snaps
}

/// Eager path, full matrix: every backend × scheduler cell of a scaled-down
/// benchmark, resumed from every quarter-makespan checkpoint.
#[test]
fn resume_is_bit_exact_across_backends_and_schedulers() {
    let workload = &small_benchmarks()[0];
    for backend in all_backends() {
        for scheduler in SchedulerKind::all() {
            let context = format!("{} with {}", backend.name(), scheduler.name());
            let straight = simulate(workload, &backend, scheduler, &conformance_config());
            let config = conformance_config().with_checkpoint_every(quarter_interval(&straight));
            let snaps = checkpoints_of(workload, &backend, scheduler, &config, &straight);
            assert!(!snaps.is_empty(), "{context}: no checkpoints captured");
            for (i, snap) in snaps.iter().enumerate() {
                let resumed = resume(workload, snap, &config)
                    .unwrap_or_else(|e| panic!("{context}, checkpoint {i}: {e}"));
                assert_eq!(resumed, straight, "{context}: resumed from checkpoint {i}");
            }
        }
    }
}

/// Streaming path: windowed runs over the lazy generators, resumed from
/// every checkpoint with a *freshly built* stream (the snapshot stores the
/// production cursor, never the unproduced remainder).
#[test]
fn streaming_resume_is_bit_exact_with_windows() {
    for window in [4usize, 32, usize::MAX] {
        for bench_idx in 0..small_benchmark_streams().len() {
            let base = ExecConfig {
                window,
                ..conformance_config()
            };
            let mut stream = small_benchmark_streams().swap_remove(bench_idx);
            let straight = simulate_stream(
                &mut stream,
                &Backend::tdm_default(),
                SchedulerKind::Fifo,
                &base,
            );
            let config = base.with_checkpoint_every(quarter_interval(&straight));
            let context = format!("{} window {window}", straight.workload);

            let mut snaps: Vec<Snapshot> = Vec::new();
            let mut stream = small_benchmark_streams().swap_remove(bench_idx);
            let report = simulate_stream_checkpointed(
                &mut stream,
                &Backend::tdm_default(),
                SchedulerKind::Fifo,
                &config,
                &mut |snap| {
                    snaps.push(Snapshot::from_bytes(&snap.to_bytes()).expect("codec round trip"));
                    true
                },
            )
            .expect("sink never halts");
            assert_eq!(report, straight, "{context}: capture perturbed the run");
            assert!(!snaps.is_empty(), "{context}: no checkpoints captured");
            for (i, snap) in snaps.iter().enumerate() {
                let mut fresh = small_benchmark_streams().swap_remove(bench_idx);
                let resumed = resume_stream(&mut fresh, snap, &config)
                    .unwrap_or_else(|e| panic!("{context}, checkpoint {i}: {e}"));
                assert_eq!(resumed, straight, "{context}: resumed from checkpoint {i}");
            }
        }
    }
}

/// Randomized round-trip fuzz: seeded random workloads (dense RAW/WAR/WAW
/// collisions over a small block pool) checkpointed mid-run and resumed,
/// across backends.
#[test]
fn random_workloads_resume_bit_exact() {
    for seed in 1..=6u64 {
        let workload = random_workload(seed);
        for backend in [Backend::tdm_default(), Backend::Software] {
            let straight = simulate(
                &workload,
                &backend,
                SchedulerKind::Age,
                &conformance_config(),
            );
            let config = conformance_config().with_checkpoint_every(quarter_interval(&straight));
            let snaps = checkpoints_of(&workload, &backend, SchedulerKind::Age, &config, &straight);
            for snap in &snaps {
                let resumed = resume(&workload, snap, &config).expect("resume");
                assert_eq!(resumed, straight, "seed {seed} on {}", backend.name());
            }
        }
    }
}

/// A resumed run must refuse a configuration that differs from the one the
/// snapshot was taken under, naming the diverging knob.
#[test]
fn resume_refuses_diverging_configuration() {
    let workload = &small_benchmarks()[0];
    let straight = simulate(
        workload,
        &Backend::tdm_default(),
        SchedulerKind::Fifo,
        &conformance_config(),
    );
    let config = conformance_config().with_checkpoint_every(quarter_interval(&straight));
    let snaps = checkpoints_of(
        workload,
        &Backend::tdm_default(),
        SchedulerKind::Fifo,
        &config,
        &straight,
    );
    let snap = &snaps[0];

    let mut wrong_seed = config.clone();
    wrong_seed.seed ^= 1;
    assert!(resume(workload, snap, &wrong_seed)
        .unwrap_err()
        .to_string()
        .contains("seed"));

    let mut wrong_cost = config.clone();
    wrong_cost.cost.sw_sched_push += Cycle::new(1);
    assert!(resume(workload, snap, &wrong_cost)
        .unwrap_err()
        .to_string()
        .contains("cost model"));
}

/// Container hardening on a real driver snapshot: bad magic, future format
/// versions, truncation and payload corruption are all detected with the
/// right error, never mis-parsed.
#[test]
fn damaged_snapshots_are_rejected() {
    let workload = &small_benchmarks()[0];
    let straight = simulate(
        workload,
        &Backend::tdm_default(),
        SchedulerKind::Fifo,
        &conformance_config(),
    );
    let config = conformance_config().with_checkpoint_every(quarter_interval(&straight));
    let snaps = checkpoints_of(
        workload,
        &Backend::tdm_default(),
        SchedulerKind::Fifo,
        &config,
        &straight,
    );
    let bytes = snaps[0].to_bytes();

    let mut bad_magic = bytes.clone();
    bad_magic[0] ^= 0xFF;
    assert!(matches!(
        Snapshot::from_bytes(&bad_magic),
        Err(SnapshotError::BadMagic { .. })
    ));

    let mut future = bytes.clone();
    future[8] = 0xFF; // low byte of the little-endian format version
    assert!(matches!(
        Snapshot::from_bytes(&future),
        Err(SnapshotError::UnsupportedVersion { .. })
    ));

    assert!(
        Snapshot::from_bytes(&bytes[..bytes.len() / 2]).is_err(),
        "truncated file accepted"
    );

    let mut corrupt = bytes.clone();
    let last = corrupt.len() - 1;
    corrupt[last] ^= 0xFF;
    assert!(
        Snapshot::from_bytes(&corrupt).is_err(),
        "flipped payload byte accepted"
    );
}

/// Every section the driver writes is registered in
/// [`tdm::sim::snapshot::SECTIONS`], and `SNAPSHOT_FORMAT.md` documents each
/// registered section by name and identifier.
#[test]
fn format_document_covers_every_written_section() {
    let doc_path = concat!(env!("CARGO_MANIFEST_DIR"), "/SNAPSHOT_FORMAT.md");
    let doc =
        std::fs::read_to_string(doc_path).unwrap_or_else(|e| panic!("cannot read {doc_path}: {e}"));

    // Capture one traced eager snapshot and one streaming snapshot so both
    // feed kinds' section sets are checked.
    let workload = &small_benchmarks()[0];
    let straight = simulate(
        workload,
        &Backend::tdm_default(),
        SchedulerKind::Fifo,
        &conformance_config(),
    );
    let config = conformance_config().with_checkpoint_every(quarter_interval(&straight));
    let mut written: Vec<u32> = Vec::new();
    for snap in checkpoints_of(
        workload,
        &Backend::tdm_default(),
        SchedulerKind::Fifo,
        &config,
        &straight,
    ) {
        written.extend(snap.section_ids());
    }
    let mut stream = small_benchmark_streams().swap_remove(0);
    simulate_stream_checkpointed(
        &mut stream,
        &Backend::tdm_default(),
        SchedulerKind::Fifo,
        &config,
        &mut |snap| {
            written.extend(snap.section_ids());
            true
        },
    )
    .expect("sink never halts");
    written.sort_unstable();
    written.dedup();
    assert!(!written.is_empty());

    for id in written {
        assert!(
            snapshot::section_info(id).is_some(),
            "driver wrote unregistered section {id:#04x}"
        );
    }
    for info in snapshot::SECTIONS {
        let id_text = format!("{:#04x}", info.id);
        assert!(
            doc.contains(&id_text),
            "SNAPSHOT_FORMAT.md does not mention section id {id_text} ({})",
            info.name
        );
        assert!(
            doc.contains(info.name),
            "SNAPSHOT_FORMAT.md does not mention section {:?}",
            info.name
        );
    }
}
