//! Modeled-metric invariants of the optimised hot paths.
//!
//! The simulate loop and the DMU list arrays are performance-optimised
//! (reused ready buffers, idle-core bitmap, cached list tails, and — since
//! the timing-wheel swap — batched same-cycle event delivery), and the
//! schedule trace became opt-in. None of that may move a modeled number:
//! these tests pin the invariants across the benchmark × backend matrix.
//! (The cached-tail list arrays and the timing wheel are each additionally
//! checked against a naive reference in lockstep: `debug_assert`s on every
//! walk during debug-build runs, the randomized suites in `tdm-core`'s
//! `list_array` module, and the `TimingWheel` vs `NaiveEventQueue` suite in
//! `tdm-sim`'s `event` module.)

use crate::common::small_benchmarks;
use crate::{all_backends, conformance_config};
use tdm::prelude::*;
use tdm::runtime::exec::simulate_stream;
use tdm::runtime::stream::WorkloadSource;

/// Switching the schedule trace off must change nothing but the trace
/// itself: makespan, per-core phase breakdowns and all counters stay
/// bit-identical, and the schedule comes back empty.
#[test]
fn schedule_tracing_never_affects_modeled_time() {
    let traced_config = conformance_config();
    let untraced_config = ExecConfig {
        trace_schedule: false,
        ..traced_config.clone()
    };
    for workload in small_benchmarks() {
        for backend in all_backends() {
            let context = format!("{} on {}", workload.name, backend.name());
            let traced = simulate(&workload, &backend, SchedulerKind::Fifo, &traced_config);
            let untraced = simulate(&workload, &backend, SchedulerKind::Fifo, &untraced_config);
            assert_eq!(traced.schedule.len(), workload.len(), "{context}: trace on");
            assert!(untraced.schedule.is_empty(), "{context}: trace off");
            assert_eq!(
                traced.makespan(),
                untraced.makespan(),
                "{context}: makespan"
            );
            assert_eq!(traced.stats, untraced.stats, "{context}: stats");
            assert_eq!(traced.tasks, untraced.tasks, "{context}: task count");
        }
    }
}

/// The same trace-toggle invariance on the *streaming* path, pinning both
/// identities the timing-wheel swap must preserve at once: trace-on/off
/// changes nothing modeled, and the streamed run agrees with the eager one
/// bit for bit (schedule included) while the batch-drained loop delivers
/// same-cycle events underneath.
#[test]
fn trace_toggle_and_streaming_identity_hold_together() {
    let traced_config = conformance_config();
    let untraced_config = ExecConfig {
        trace_schedule: false,
        ..traced_config.clone()
    };
    for workload in small_benchmarks() {
        for backend in all_backends() {
            let context = format!("{} on {}", workload.name, backend.name());
            let eager = simulate(&workload, &backend, SchedulerKind::Fifo, &traced_config);
            let mut source = WorkloadSource::new(&workload);
            let streamed_traced =
                simulate_stream(&mut source, &backend, SchedulerKind::Fifo, &traced_config);
            let mut source = WorkloadSource::new(&workload);
            let streamed_untraced =
                simulate_stream(&mut source, &backend, SchedulerKind::Fifo, &untraced_config);
            assert_eq!(eager.stats, streamed_traced.stats, "{context}: stats");
            assert_eq!(
                eager.schedule, streamed_traced.schedule,
                "{context}: schedule"
            );
            assert_eq!(
                streamed_traced.stats, streamed_untraced.stats,
                "{context}: trace toggle moved streaming stats"
            );
            assert!(
                streamed_untraced.schedule.is_empty(),
                "{context}: trace off"
            );
        }
    }
}

/// Per-core phase totals (DEPS + SCHED + EXEC + IDLE) must cover the
/// makespan exactly on every core, for every cell of the matrix — the
/// invariant Figure 2's breakdowns rest on.
#[test]
fn phase_totals_cover_makespan_across_the_matrix() {
    let config = conformance_config();
    for workload in small_benchmarks() {
        for backend in all_backends() {
            for scheduler in [SchedulerKind::Fifo, SchedulerKind::Age] {
                let report = simulate(&workload, &backend, scheduler, &config);
                for (core, breakdown) in report.stats.cores.iter().enumerate() {
                    assert_eq!(
                        breakdown.total(),
                        report.makespan(),
                        "{} on {} with {}: core {core} phase totals",
                        workload.name,
                        backend.name(),
                        scheduler.name()
                    );
                }
            }
        }
    }
}

/// The DMU's SRAM access totals — which embed every list-array walk count —
/// must be a pure function of the run: repeated runs agree bit-for-bit.
/// (Tdm and TaskSuperscalar totals are each deterministic but differ from
/// one another: scheduling home changes interleaving, hence walk lengths.)
#[test]
fn dmu_walk_totals_are_deterministic() {
    let config = conformance_config();
    for workload in small_benchmarks() {
        let a = simulate(
            &workload,
            &Backend::tdm_default(),
            SchedulerKind::Fifo,
            &config,
        );
        let b = simulate(
            &workload,
            &Backend::tdm_default(),
            SchedulerKind::Fifo,
            &config,
        );
        let hw_a = a.hardware.expect("TDM reports hardware stats");
        let hw_b = b.hardware.expect("TDM reports hardware stats");
        assert_eq!(
            hw_a.stats.total_accesses, hw_b.stats.total_accesses,
            "{}: access totals must be deterministic",
            workload.name
        );
        assert_eq!(hw_a.stats, hw_b.stats, "{}: full DMU stats", workload.name);
        assert!(
            hw_a.stats.total_accesses > 0,
            "{}: no accesses?",
            workload.name
        );
    }
}
