//! Eager-vs-streaming equivalence and windowed-master properties.
//!
//! The streaming path ([`simulate_stream`]) must be a faithful re-plumbing
//! of the eager driver, not a second simulator: with an unbounded window,
//! driving a benchmark's lazy [`TaskStream`] must produce **bit-identical**
//! makespans, per-core phase breakdowns, schedules and DMU access totals to
//! simulating the collected [`Workload`] — for every backend × scheduler
//! cell. With a finite window the master is additionally throttled; the
//! run must still respect the reference graph, execute every task exactly
//! once, and keep the resident spec count bounded by the window.
//!
//! (The same equivalence at full Table II sizes — all 36 benchmark ×
//! backend cells — is checked in release mode by
//! `bench_scale verify`, which CI runs; these tests keep the debug-build
//! matrix quick with the scaled-down benchmarks.)

use crate::common::{small_benchmark_streams, small_benchmarks};
use crate::{all_backends, conformance_config};
use tdm::prelude::*;
use tdm::runtime::exec::simulate_stream;
use tdm::runtime::stream::WorkloadSource;

/// Full scaled-down matrix: for every benchmark × backend × scheduler cell,
/// the streaming run over the lazy generator equals the eager run over the
/// collected workload, bit for bit.
#[test]
fn streaming_matches_eager_across_the_matrix() {
    let config = conformance_config();
    let workloads = small_benchmarks();
    for (w_idx, workload) in workloads.iter().enumerate() {
        for backend in all_backends() {
            for scheduler in SchedulerKind::all() {
                let context = format!(
                    "{} on {} with {}",
                    workload.name,
                    backend.name(),
                    scheduler.name()
                );
                let eager = simulate(workload, &backend, scheduler, &config);
                // A fresh lazy stream per cell (streams are consumed).
                let mut stream = small_benchmark_streams().swap_remove(w_idx);
                let streamed = simulate_stream(&mut stream, &backend, scheduler, &config);
                assert_eq!(eager.makespan(), streamed.makespan(), "{context}: makespan");
                assert_eq!(eager.stats, streamed.stats, "{context}: stats");
                assert_eq!(eager.schedule, streamed.schedule, "{context}: schedule");
                assert_eq!(eager.tasks, streamed.tasks, "{context}: task count");
                match (&eager.hardware, &streamed.hardware) {
                    (None, None) => {}
                    (Some(e), Some(s)) => {
                        assert_eq!(
                            e.stats.total_accesses, s.stats.total_accesses,
                            "{context}: DMU access totals"
                        );
                        assert_eq!(e.stats, s.stats, "{context}: DMU stats");
                        assert_eq!(e.peak, s.peak, "{context}: DMU peak occupancy");
                    }
                    _ => panic!("{context}: hardware report presence differs"),
                }
            }
        }
    }
}

/// Replaying a materialised workload through `WorkloadSource` is equivalent
/// too (the generic driver does not care where specs come from).
#[test]
fn workload_source_replay_matches_eager() {
    let config = conformance_config();
    for workload in small_benchmarks() {
        let eager = simulate(
            &workload,
            &Backend::tdm_default(),
            SchedulerKind::Locality,
            &config,
        );
        let mut source = WorkloadSource::new(&workload);
        let streamed = simulate_stream(
            &mut source,
            &Backend::tdm_default(),
            SchedulerKind::Locality,
            &config,
        );
        assert_eq!(eager.makespan(), streamed.makespan(), "{}", workload.name);
        assert_eq!(eager.stats, streamed.stats, "{}", workload.name);
    }
}

/// Windowed streaming runs: every window size completes the full workload,
/// respects the reference graph, and keeps the resident spec count within
/// window + 1 (the one extra spec is the stream's prefetch slot).
#[test]
fn windowed_runs_conform_and_bound_residency() {
    for (w_idx, workload) in small_benchmarks().iter().enumerate() {
        let graph = TaskGraph::build(workload);
        for window in [1usize, 4, 33, 256] {
            let config = conformance_config().with_window(window);
            for backend in [Backend::tdm_default(), Backend::Software] {
                let context = format!("{} window {window} on {}", workload.name, backend.name());
                let mut stream = small_benchmark_streams().swap_remove(w_idx);
                let report = simulate_stream(&mut stream, &backend, SchedulerKind::Fifo, &config);
                assert_eq!(
                    report.stats.tasks_executed,
                    workload.len() as u64,
                    "{context}: task count"
                );
                assert!(
                    report.peak_resident_tasks <= window + 1,
                    "{context}: {} specs resident",
                    report.peak_resident_tasks
                );
                let order = report.finish_order();
                crate::common::assert_is_permutation(&order, workload.len());
                if let Err((pred, task)) = graph.check_order(&order) {
                    panic!("{context}: task {task} finished before its predecessor {pred}");
                }
            }
        }
    }
}

/// A window at least as large as the workload never binds, so the windowed
/// run is bit-identical to the unbounded one.
#[test]
fn non_binding_window_is_identical_to_unbounded() {
    let workloads = small_benchmarks();
    for (w_idx, workload) in workloads.iter().enumerate() {
        let unbounded = conformance_config();
        let exact = conformance_config().with_window(workload.len());
        let mut stream = small_benchmark_streams().swap_remove(w_idx);
        let a = simulate_stream(
            &mut stream,
            &Backend::tdm_default(),
            SchedulerKind::Age,
            &unbounded,
        );
        let mut stream = small_benchmark_streams().swap_remove(w_idx);
        let b = simulate_stream(
            &mut stream,
            &Backend::tdm_default(),
            SchedulerKind::Age,
            &exact,
        );
        assert_eq!(a.makespan(), b.makespan(), "{}", workload.name);
        assert_eq!(a.stats, b.stats, "{}", workload.name);
    }
}

/// Tight windows model backpressure: the master is forced to interleave
/// execution with creation, so the master core records execution time it
/// would not otherwise have (on a multi-worker chip where it normally only
/// creates).
#[test]
fn tight_window_throttles_the_master() {
    let config_wide = conformance_config();
    let config_tight = conformance_config().with_window(2);
    let workload = &small_benchmarks()[0];
    let mut stream = small_benchmark_streams().swap_remove(0);
    let wide = simulate_stream(
        &mut stream,
        &Backend::tdm_default(),
        SchedulerKind::Fifo,
        &config_wide,
    );
    let mut stream = small_benchmark_streams().swap_remove(0);
    let tight = simulate_stream(
        &mut stream,
        &Backend::tdm_default(),
        SchedulerKind::Fifo,
        &config_tight,
    );
    assert_eq!(tight.stats.tasks_executed, workload.len() as u64);
    // A 2-task window cannot be faster than an unbounded one.
    assert!(
        tight.makespan() >= wide.makespan(),
        "throttled {} vs unbounded {}",
        tight.makespan(),
        wide.makespan()
    );
    assert!(tight.peak_resident_tasks <= 3);
    assert!(wide.peak_resident_tasks >= workload.len() / 2);
}
