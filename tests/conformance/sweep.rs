//! Parallel-sweep determinism: thread count must be unobservable.
//!
//! The sweep runner (`tdm_bench::sweep`) executes independent simulation
//! points on host worker threads. Parallelism is a pure throughput device —
//! every point is a deterministic function of its grid coordinates and
//! derived seed — so the conformance contract is:
//!
//! * **thread-count invariance** — the assembled result vector is
//!   bit-identical between a single-threaded and a multi-threaded execution
//!   of the same grid;
//! * **serial equivalence** — every point's [`RunReport`] equals a plain
//!   `simulate_stream` run of that point's stream and `ExecConfig`, outside
//!   the sweep runner entirely;
//! * **seed purity** — per-point seeds are a pure function of (base seed,
//!   point index), so re-expanding the grid or replaying one point in
//!   isolation reproduces the sweep exactly.
//!
//! (`bench_sweep verify` re-checks thread-count invariance on the full
//! 36-point Table II grid in release mode in CI; this suite keeps the
//! debug-build grid small.)

use crate::common::small_benchmark_streams;
use tdm::prelude::*;
use tdm::runtime::exec::simulate_stream;
use tdm_bench::sweep::{point_seed, run_sweep, BackendSpec, SweepGrid, WorkloadSpec};

/// A scaled-down grid: two benchmark generators × all four backends × two
/// schedulers × an unbounded and a tight window, with per-point seeds.
fn small_grid() -> SweepGrid {
    // Indices into `small_benchmark_streams()`: 0 = cholesky 8×8 blocks,
    // 2 = histogram 32 stripes. Each `WorkloadSpec` builds a fresh stream
    // per point (streams are consumed by a run).
    let workloads = vec![
        WorkloadSpec::new("cholesky-8", || small_benchmark_streams().swap_remove(0)),
        WorkloadSpec::new("histogram-32", || small_benchmark_streams().swap_remove(2)),
    ];
    SweepGrid::new()
        .with_workloads(workloads)
        .with_backends(vec![
            BackendSpec::from(Backend::Software),
            BackendSpec::from(Backend::tdm_default()),
            BackendSpec::from(Backend::Carbon),
            BackendSpec::from(Backend::task_superscalar_default()),
        ])
        .with_schedulers(vec![SchedulerKind::Fifo, SchedulerKind::Lifo])
        .with_windows(vec![usize::MAX, 8])
        .with_per_point_seeds()
}

#[test]
fn sweep_results_are_bit_identical_across_thread_counts() {
    let grid = small_grid();
    let serial = run_sweep(&grid, 1);
    let parallel = run_sweep(&grid, 4);
    assert_eq!(serial.len(), grid.len());
    assert_eq!(serial.len(), parallel.len());
    for (a, b) in serial.iter().zip(&parallel) {
        let context = format!(
            "{} × {} × {} (window {})",
            a.workload, a.backend, a.scheduler, a.window
        );
        assert!(a.modeled_eq(b), "{context}: diverged across thread counts");
        // `modeled_eq` covers the full report; spot-check the headline
        // fields so a comparison bug cannot silently pass everything.
        assert_eq!(a.makespan_cycles(), b.makespan_cycles(), "{context}");
        assert_eq!(a.dmu_accesses(), b.dmu_accesses(), "{context}");
        assert_eq!(a.report.stats, b.report.stats, "{context}");
        if a.window != usize::MAX {
            assert!(
                a.report.peak_resident_tasks <= a.window + 1,
                "{context}: residency bound violated"
            );
        }
    }
}

#[test]
fn sweep_points_equal_a_serial_simulate_stream_run() {
    let grid = small_grid();
    let results = run_sweep(&grid, 3);
    for (point, result) in grid.points().iter().zip(&results) {
        let mut stream = grid.workloads[point.workload].stream();
        let report = simulate_stream(
            &mut stream,
            &point.backend,
            point.scheduler,
            &point.exec_config(),
        );
        assert_eq!(
            report, result.report,
            "point {} ({} × {} × {}): sweep runner and serial driver disagree",
            point.index, result.workload, result.backend, result.scheduler
        );
    }
}

#[test]
fn per_point_seeds_are_a_pure_function_of_the_grid() {
    let grid = small_grid();
    let points = grid.points();
    for point in &points {
        assert_eq!(point.seed, point_seed(grid.seed, point.index as u64));
    }
    // Re-expansion is bit-identical, and seeds do not collide on this grid.
    let again = grid.points();
    assert_eq!(
        points.iter().map(|p| p.seed).collect::<Vec<_>>(),
        again.iter().map(|p| p.seed).collect::<Vec<_>>()
    );
    let distinct: std::collections::HashSet<u64> = points.iter().map(|p| p.seed).collect();
    assert_eq!(distinct.len(), points.len());
}
