//! Trace replay conformance: a dumped run is the run.
//!
//! The `tdmtrace v1` line format ([`tdm::runtime::trace`]) is the bridge
//! between the generators and offline replay. These tests pin the contract
//! end to end: dumping any source and replaying the text must reproduce the
//! original execution bit for bit on every backend, the canonical encoding
//! must be a fixed point of `parse ∘ dump`, and malformed input must come
//! back as named [`TraceError`](tdm::runtime::trace::TraceError)s — never
//! panics. (Line-level corpus coverage — bad directions, truncated records,
//! non-numeric costs — lives in the module's unit tests; here we check the
//! replayed *execution*.)

use tdm::prelude::*;
use tdm::runtime::exec::simulate_stream;
use tdm::runtime::trace::{self, TraceError, TraceSource};
use tdm::workloads::grammar::{self, GrammarSpec};

use crate::{all_backends, conformance_config};

/// Grammar → dump → parse → replay reproduces the generator's streaming run
/// field for field on every backend, and re-dumping the parsed source is
/// byte-identical (the canonical encoding is a fixed point).
#[test]
fn trace_replay_reproduces_generator_run() {
    let config = conformance_config();
    for seed in [3, 42] {
        let spec = GrammarSpec::draw(seed);
        let text = trace::dump(&mut spec.stream()).expect("grammar dumps cleanly");
        let replay = TraceSource::parse(&text).expect("dump parses back");
        let again = trace::dump(&mut replay.clone()).expect("replay dumps cleanly");
        assert_eq!(text, again, "dump → parse → dump must be byte-identical");
        for backend in all_backends() {
            let context = format!("{} on {}", spec.name(), backend.name());
            let mut generated = spec.stream();
            let expected = simulate_stream(&mut generated, &backend, SchedulerKind::Fifo, &config);
            let mut replayed_source = replay.clone();
            let replayed =
                simulate_stream(&mut replayed_source, &backend, SchedulerKind::Fifo, &config);
            assert_eq!(expected, replayed, "{context}: trace replay diverged");
        }
    }
}

/// The benchmark generators round-trip through the trace format too — the
/// format is not grammar-specific.
#[test]
fn trace_replay_reproduces_benchmark_run() {
    let config = conformance_config();
    let bench = Benchmark::Blackscholes;
    let text = trace::dump(&mut bench.tdm_stream()).expect("benchmark dumps cleanly");
    let mut replay = TraceSource::parse(&text).expect("dump parses back");
    let mut generated = bench.tdm_stream();
    let expected = simulate_stream(
        &mut generated,
        &Backend::tdm_default(),
        SchedulerKind::Locality,
        &config,
    );
    let replayed = simulate_stream(
        &mut replay,
        &Backend::tdm_default(),
        SchedulerKind::Locality,
        &config,
    );
    assert_eq!(expected, replayed, "benchmark trace replay diverged");
}

/// Malformed traces are rejected with the named error for the offending
/// line — bad direction, truncated record, non-numeric cost, bad count —
/// and never panic.
#[test]
fn malformed_traces_are_rejected_with_named_errors() {
    let valid = trace::dump(&mut grammar::stream(5)).expect("dump");
    assert!(TraceSource::parse(&valid).is_ok());

    let bad_dir = valid.replacen("out:", "sideways:", 1);
    assert!(matches!(
        TraceSource::parse(&bad_dir),
        Err(TraceError::BadDirection { .. })
    ));

    let bad_cost = valid.lines().map(|l| {
        if let Some(rest) = l.strip_prefix("t ") {
            let mut parts = rest.split_whitespace();
            let kind = parts.next().unwrap_or("");
            return format!("t {kind} banana");
        }
        l.to_string()
    });
    let bad_cost: Vec<String> = bad_cost.collect();
    assert!(matches!(
        TraceSource::parse(&bad_cost.join("\n")),
        Err(TraceError::BadCost { .. })
    ));

    let truncated: String = valid
        .lines()
        .map(|l| if l.starts_with("t ") { "t lonely" } else { l })
        .collect::<Vec<_>>()
        .join("\n");
    assert!(matches!(
        TraceSource::parse(&truncated),
        Err(TraceError::TruncatedRecord { .. })
    ));

    let missing_tasks: String = valid
        .lines()
        .filter(|l| !l.starts_with("t "))
        .collect::<Vec<_>>()
        .join("\n");
    assert!(matches!(
        TraceSource::parse(&missing_tasks),
        Err(TraceError::TaskCountMismatch { found: 0, .. })
    ));

    assert!(matches!(
        TraceSource::parse(""),
        Err(TraceError::MissingHeader)
    ));
    assert!(matches!(
        TraceSource::parse("tdmtrace v99\n"),
        Err(TraceError::UnsupportedVersion { .. })
    ));
}
