//! Cross-crate property tests: the DMU (hardware dependence tracking) must
//! agree with the reference software Task Dependence Graph on every workload,
//! including randomly generated ones.

use proptest::prelude::*;
use tdm::core::config::DmuConfig;
use tdm::prelude::*;
use tdm::runtime::cost::CostModel;
use tdm::runtime::engine::{DependenceEngine, HardwareEngine, HardwareFlavor, SoftwareEngine};
use tdm::runtime::task::TaskRef;

/// Drives an engine to completion executing ready tasks in FIFO order and
/// returns the finish order.
fn drive(engine: &mut dyn DependenceEngine, n: usize) -> Vec<TaskRef> {
    let mut order = Vec::new();
    let mut pool = Vec::new();
    let mut next = 0usize;
    while order.len() < n {
        if next < n {
            let outcome = engine.create_task(Cycle::ZERO, TaskRef(next));
            pool.extend(outcome.ready);
            if outcome.completed {
                next += 1;
                continue;
            }
        }
        assert!(!pool.is_empty(), "engine deadlocked with {} tasks left", n - order.len());
        let info = pool.remove(0);
        let fin = engine.finish_task(Cycle::ZERO, info.task, 0);
        pool.extend(fin.ready);
        order.push(info.task);
    }
    order
}

/// Strategy: a random workload over a small pool of addresses, so RAW/WAR/WAW
/// collisions are frequent.
fn arbitrary_workload() -> impl Strategy<Value = Workload> {
    let dep = (0u64..24, 0usize..3).prop_map(|(block, dir)| {
        let addr = 0x9_0000 + block * 0x1000;
        match dir {
            0 => DependenceSpec::input(addr, 0x1000),
            1 => DependenceSpec::output(addr, 0x1000),
            _ => DependenceSpec::inout(addr, 0x1000),
        }
    });
    let task = prop::collection::vec(dep, 0..5)
        .prop_map(|deps| TaskSpec::new("rand", Cycle::new(10_000), deps));
    prop::collection::vec(task, 1..120).prop_map(|tasks| Workload::new("random", tasks))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Any order the DMU permits respects the reference graph.
    #[test]
    fn dmu_execution_order_respects_reference_graph(workload in arbitrary_workload()) {
        let graph = TaskGraph::build(&workload);
        let mut engine = HardwareEngine::new(
            HardwareFlavor::Tdm,
            &workload,
            DmuConfig::default(),
            CostModel::default(),
            Cycle::new(16),
        );
        let order = drive(&mut engine, workload.len());
        prop_assert_eq!(order.len(), workload.len());
        prop_assert!(graph.check_order(&order).is_ok());
    }

    /// A severely undersized DMU still completes every workload (instructions
    /// block and retry, they never lose tasks) and still respects the graph.
    #[test]
    fn tiny_dmu_completes_and_respects_graph(workload in arbitrary_workload()) {
        let mut config = DmuConfig::default();
        config.tat_entries = 16;
        config.tat_ways = 8;
        config.dat_entries = 16;
        config.dat_ways = 8;
        config.successor_la_entries = 16;
        config.dependence_la_entries = 16;
        config.reader_la_entries = 16;
        let graph = TaskGraph::build(&workload);
        let mut engine = HardwareEngine::new(
            HardwareFlavor::Tdm,
            &workload,
            config,
            CostModel::default(),
            Cycle::new(16),
        );
        let order = drive(&mut engine, workload.len());
        prop_assert!(graph.check_order(&order).is_ok());
    }

    /// The software engine and the DMU agree on which tasks become ready
    /// after each finish when driven identically.
    #[test]
    fn software_and_hardware_engines_agree(workload in arbitrary_workload()) {
        let mut sw = SoftwareEngine::new(&workload, CostModel::default());
        let mut hw = HardwareEngine::new(
            HardwareFlavor::Tdm,
            &workload,
            DmuConfig::default(),
            CostModel::default(),
            Cycle::new(16),
        );
        let sw_order = drive(&mut sw, workload.len());
        let hw_order = drive(&mut hw, workload.len());
        // Both engines execute with the same FIFO tie-breaking, so the finish
        // orders must be identical.
        prop_assert_eq!(sw_order, hw_order);
    }

    /// A full simulation executes every task exactly once under every backend
    /// and scheduler combination.
    #[test]
    fn simulation_always_completes(workload in arbitrary_workload(), sched in 0usize..5) {
        let scheduler = SchedulerKind::all()[sched];
        let config = ExecConfig {
            chip: ChipConfig::with_cores(4),
            ..ExecConfig::default()
        };
        for backend in [Backend::Software, Backend::tdm_default()] {
            let report = simulate(&workload, &backend, scheduler, &config);
            prop_assert_eq!(report.stats.tasks_executed, workload.len() as u64);
        }
    }
}

#[test]
fn benchmark_workloads_complete_on_all_backends_scaled_down() {
    // Scaled-down versions of the structured benchmarks exercise every
    // backend in a few seconds even in debug builds.
    use tdm::workloads::{cholesky, histogram, qr};
    let workloads = vec![
        cholesky::generate(cholesky::Params { blocks: 8 }),
        qr::generate(qr::Params { blocks: 8 }),
        histogram::generate(histogram::Params { stripes: 32 }),
    ];
    let config = ExecConfig {
        chip: ChipConfig::with_cores(8),
        ..ExecConfig::default()
    };
    for workload in &workloads {
        let graph = TaskGraph::build(workload);
        assert!(graph.critical_path_len() > 1);
        for backend in [
            Backend::Software,
            Backend::tdm_default(),
            Backend::Carbon,
            Backend::task_superscalar_default(),
        ] {
            let report = simulate(workload, &backend, SchedulerKind::Locality, &config);
            assert_eq!(
                report.stats.tasks_executed,
                workload.len() as u64,
                "{} on {}",
                workload.name,
                backend.name()
            );
        }
    }
}
