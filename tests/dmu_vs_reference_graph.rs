//! Cross-crate property tests: the DMU (hardware dependence tracking) must
//! agree with the reference software Task Dependence Graph on every workload,
//! including randomly generated ones.
//!
//! The seed version of this file used `proptest`; the workspace builds
//! offline, so the random workloads are generated instead from the in-tree
//! deterministic [`SplitMix64`](tdm::sim::rng::SplitMix64) over a fixed set
//! of seeds (see [`common::random_workload`]). Failures therefore reproduce
//! exactly: the panic message names the offending seed.

mod common;

use common::{assert_is_permutation, drive, random_workload};
use tdm::core::config::DmuConfig;
use tdm::prelude::*;
use tdm::runtime::cost::CostModel;
use tdm::runtime::engine::{HardwareEngine, HardwareFlavor, SoftwareEngine};

/// Number of random workloads each property is checked against (the seed's
/// proptest configuration used 64 cases).
const CASES: u64 = 64;

fn tiny_dmu_config() -> DmuConfig {
    DmuConfig {
        tat_entries: 16,
        tat_ways: 8,
        dat_entries: 16,
        dat_ways: 8,
        successor_la_entries: 16,
        dependence_la_entries: 16,
        reader_la_entries: 16,
        ..DmuConfig::default()
    }
}

/// Any order the DMU permits respects the reference graph.
#[test]
fn dmu_execution_order_respects_reference_graph() {
    for seed in 0..CASES {
        let workload = random_workload(seed);
        let graph = TaskGraph::build(&workload);
        let mut engine = HardwareEngine::new(
            HardwareFlavor::Tdm,
            DmuConfig::default(),
            CostModel::default(),
            Cycle::new(16),
        );
        let order = drive(&mut engine, &workload);
        assert_is_permutation(&order, workload.len());
        assert!(graph.check_order(&order).is_ok(), "seed {seed}");
    }
}

/// A severely undersized DMU still completes every workload (instructions
/// block and retry, they never lose tasks) and still respects the graph.
#[test]
fn tiny_dmu_completes_and_respects_graph() {
    for seed in 0..CASES {
        let workload = random_workload(seed);
        let graph = TaskGraph::build(&workload);
        let mut engine = HardwareEngine::new(
            HardwareFlavor::Tdm,
            tiny_dmu_config(),
            CostModel::default(),
            Cycle::new(16),
        );
        let order = drive(&mut engine, &workload);
        assert!(graph.check_order(&order).is_ok(), "seed {seed}");
    }
}

/// The software engine and the DMU agree on which tasks become ready after
/// each finish when driven identically.
#[test]
fn software_and_hardware_engines_agree() {
    for seed in 0..CASES {
        let workload = random_workload(seed);
        let mut sw = SoftwareEngine::new(CostModel::default());
        let mut hw = HardwareEngine::new(
            HardwareFlavor::Tdm,
            DmuConfig::default(),
            CostModel::default(),
            Cycle::new(16),
        );
        let sw_order = drive(&mut sw, &workload);
        let hw_order = drive(&mut hw, &workload);
        // Both engines execute with the same FIFO tie-breaking, so the finish
        // orders must be identical.
        assert_eq!(sw_order, hw_order, "seed {seed}");
    }
}

/// A full simulation executes every task exactly once under every backend
/// and scheduler combination.
#[test]
fn simulation_always_completes() {
    let config = ExecConfig {
        chip: ChipConfig::with_cores(4),
        ..ExecConfig::default()
    };
    for seed in 0..CASES {
        let workload = random_workload(seed);
        let scheduler = SchedulerKind::all()[(seed % 5) as usize];
        for backend in [Backend::Software, Backend::tdm_default()] {
            let report = simulate(&workload, &backend, scheduler, &config);
            assert_eq!(
                report.stats.tasks_executed,
                workload.len() as u64,
                "seed {seed} backend {} scheduler {}",
                backend.name(),
                scheduler.name()
            );
        }
    }
}

#[test]
fn benchmark_workloads_complete_on_all_backends_scaled_down() {
    // Scaled-down versions of the structured benchmarks exercise every
    // backend in a few seconds even in debug builds.
    use tdm::workloads::{cholesky, histogram, qr};
    let workloads = vec![
        cholesky::generate(cholesky::Params { blocks: 8 }),
        qr::generate(qr::Params { blocks: 8 }),
        histogram::generate(histogram::Params { stripes: 32 }),
    ];
    let config = ExecConfig {
        chip: ChipConfig::with_cores(8),
        ..ExecConfig::default()
    };
    for workload in &workloads {
        let graph = TaskGraph::build(workload);
        assert!(graph.critical_path_len() > 1);
        for backend in [
            Backend::Software,
            Backend::tdm_default(),
            Backend::Carbon,
            Backend::task_superscalar_default(),
        ] {
            let report = simulate(workload, &backend, SchedulerKind::Locality, &config);
            assert_eq!(
                report.stats.tasks_executed,
                workload.len() as u64,
                "{} on {}",
                workload.name,
                backend.name()
            );
        }
    }
}
