//! Integration tests that assert the qualitative claims of the paper's
//! evaluation hold in this reproduction, on scaled-down workloads so they run
//! quickly in debug builds.

use tdm::energy::chip::ChipPowerModel;
use tdm::energy::edp::evaluate;
use tdm::prelude::*;
use tdm::workloads::{cholesky, dedup, qr};

fn config(cores: usize) -> ExecConfig {
    ExecConfig {
        chip: ChipConfig::with_cores(cores),
        ..ExecConfig::default()
    }
}

/// Section VI-A / Figure 12: TDM outperforms the software runtime when task
/// creation is a bottleneck, and reduces EDP.
#[test]
fn tdm_beats_software_on_cholesky() {
    // The Table II granularity (32×32 blocks): the software runtime's task
    // creation is the bottleneck at this point.
    let workload = cholesky::software_optimal();
    let cfg = config(32);
    let sw = simulate(&workload, &Backend::Software, SchedulerKind::Fifo, &cfg);
    let tdm = simulate(
        &workload,
        &Backend::tdm_default(),
        SchedulerKind::Fifo,
        &cfg,
    );
    let speedup = tdm.speedup_over(&sw);
    assert!(
        speedup > 1.03,
        "TDM should speed up a creation-bound Cholesky, got {speedup:.3}"
    );

    let model = ChipPowerModel::default();
    let freq = Frequency::ghz(2.0);
    let sw_energy = evaluate(&sw, &model, &DmuConfig::default(), freq);
    let tdm_energy = evaluate(&tdm, &model, &DmuConfig::default(), freq);
    assert!(
        tdm_energy.normalized_edp(&sw_energy) < 1.0,
        "TDM should reduce EDP on Cholesky"
    );
    // The DMU itself consumes a negligible fraction of energy (<0.01% in the
    // paper; we allow <0.1% here).
    assert!(tdm_energy.accelerator_fraction() < 1e-3);
}

/// Section VI-A: the Successor/Age schedulers overlap Dedup's serialized I/O
/// chain with compression work; FIFO does not.
#[test]
fn priority_scheduling_helps_dedup() {
    let workload = dedup::generate();
    let cfg = config(32);
    let backend = Backend::tdm_default();
    let fifo = simulate(&workload, &backend, SchedulerKind::Fifo, &cfg);
    let succ = simulate(
        &workload,
        &backend,
        SchedulerKind::Successor { threshold: 2 },
        &cfg,
    );
    let improvement = succ.speedup_over(&fifo);
    assert!(
        improvement > 1.08,
        "Successor scheduling should overlap Dedup's I/O chain, got {improvement:.3}"
    );
}

/// Section VI-A: the master's dependence-management share of time drops with
/// TDM (Figure 10).
#[test]
fn master_creation_share_drops_with_tdm() {
    let workload = cholesky::generate(cholesky::Params { blocks: 16 });
    let cfg = config(32);
    let sw = simulate(&workload, &Backend::Software, SchedulerKind::Fifo, &cfg);
    let tdm = simulate(
        &workload,
        &Backend::tdm_default(),
        SchedulerKind::Fifo,
        &cfg,
    );
    assert!(tdm.master_deps_fraction() < sw.master_deps_fraction());
}

/// Section VI-C: TDM with a good scheduler is at least as fast as Task
/// Superscalar (same dependence tracking, fixed FIFO), and both beat Carbon
/// on dependence-heavy workloads.
#[test]
fn tdm_matches_or_beats_task_superscalar() {
    let workload = cholesky::generate(cholesky::Params { blocks: 16 });
    let cfg = config(32);
    let sw = simulate(&workload, &Backend::Software, SchedulerKind::Fifo, &cfg);
    let carbon = simulate(&workload, &Backend::Carbon, SchedulerKind::Fifo, &cfg);
    let tss = simulate(
        &workload,
        &Backend::task_superscalar_default(),
        SchedulerKind::Fifo,
        &cfg,
    );
    let tdm = simulate(
        &workload,
        &Backend::tdm_default(),
        SchedulerKind::Locality,
        &cfg,
    );
    assert!(tss.speedup_over(&sw) > carbon.speedup_over(&sw));
    assert!(tdm.makespan() <= tss.makespan());
}

/// Table II: the two benchmarks whose optimal granularity differs between the
/// software runtime and TDM really do prefer the finer version under TDM.
#[test]
fn finer_granularity_pays_off_under_tdm_for_qr() {
    let coarse = qr::software_optimal();
    let fine = qr::tdm_optimal();
    let cfg = config(32);
    // Under TDM, the fine-grained version is faster.
    let tdm_fine = simulate(&fine, &Backend::tdm_default(), SchedulerKind::Fifo, &cfg);
    let tdm_coarse = simulate(&coarse, &Backend::tdm_default(), SchedulerKind::Fifo, &cfg);
    assert!(
        tdm_fine.makespan() < tdm_coarse.makespan(),
        "finer QR should win under TDM"
    );
}

/// Section V-B / Figure 9: DMU access latency has a minor impact at realistic
/// task granularities.
#[test]
fn dmu_latency_is_not_critical() {
    let workload = cholesky::generate(cholesky::Params { blocks: 16 });
    let cfg = config(16);
    let fast = simulate(
        &workload,
        &Backend::Tdm(DmuConfig::default().with_access_latency(Cycle::new(1))),
        SchedulerKind::Fifo,
        &cfg,
    );
    let slow = simulate(
        &workload,
        &Backend::Tdm(DmuConfig::default().with_access_latency(Cycle::new(16))),
        SchedulerKind::Fifo,
        &cfg,
    );
    // Allow a little scheduling noise on top of the paper's <1% claim: the
    // latency change shifts readiness timestamps, which can reorder the FIFO
    // pool on a few hundred tasks.
    let degradation = slow.makespan().as_f64() / fast.makespan().as_f64();
    assert!(
        degradation < 1.07,
        "16-cycle DMU structures should cost only a few percent, got {degradation:.3}"
    );
}

/// Table III: the DMU fits in ~105 KB, ~7.3× less storage than Task
/// Superscalar needs for the same number of in-flight tasks.
#[test]
fn dmu_storage_matches_table_iii() {
    use tdm::core::area::{task_superscalar_kilobytes, DmuStorageReport};
    let report = DmuStorageReport::for_config(&DmuConfig::default());
    let total = report.total_kilobytes();
    assert!((total - 105.25).abs() / 105.25 < 0.1, "total {total:.2} KB");
    let ratio = task_superscalar_kilobytes(2048) / total;
    assert!((ratio - 7.3).abs() < 0.6, "ratio {ratio:.2}");
}
